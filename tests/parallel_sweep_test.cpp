// Determinism suite for the parallel sharded sweep executor
// (sim/parallel_sweep.hpp).
//
// The executor is only allowed to be fast, not different: for every thread
// count the coverage counts, stretch sample sequences and floating-point
// aggregates must be bit-identical to the serial route_batch sweeps, and the
// per-unit RNG streams must depend on the unit index alone.  The suite also
// pins the ProtocolCoverage::coverage() corner semantics.
#include "sim/parallel_sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/coverage.hpp"
#include "analysis/protocols.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "net/failure_model.hpp"
#include "topo/topologies.hpp"

namespace pr {
namespace {

using sim::SweepExecutor;
using sim::WorkerContext;

// ---------------------------------------------------------------------------
// Executor mechanics

TEST(SplitSeedTest, DeterministicAndStreamSensitive) {
  EXPECT_EQ(sim::split_seed(42, 0), sim::split_seed(42, 0));
  EXPECT_NE(sim::split_seed(42, 0), sim::split_seed(42, 1));
  EXPECT_NE(sim::split_seed(42, 0), sim::split_seed(43, 0));
  // Adjacent streams of adjacent seeds must not collide either (the classic
  // counter-mixing failure mode).
  EXPECT_NE(sim::split_seed(42, 1), sim::split_seed(43, 0));
}

TEST(SweepExecutorTest, RunsEveryUnitExactlyOnce) {
  SweepExecutor executor(3);
  EXPECT_EQ(executor.thread_count(), 3u);

  constexpr std::size_t kUnits = 100;
  std::vector<std::atomic<int>> hits(kUnits);
  executor.run(kUnits, [&](std::size_t unit, WorkerContext&) {
    hits[unit].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t u = 0; u < kUnits; ++u) {
    EXPECT_EQ(hits[u].load(), 1) << "unit " << u;
  }
}

TEST(SweepExecutorTest, RejectsAbsurdThreadCounts) {
  // A "-1" CLI arg run through strtoull must not turn into 2^64-1 workers.
  EXPECT_THROW(SweepExecutor(sim::kMaxSweepThreads + 1), std::invalid_argument);
  EXPECT_THROW(SweepExecutor(static_cast<std::size_t>(-1)), std::invalid_argument);
}

TEST(ThreadsFromArgTest, ParsesValidatesAndFallsBack) {
  const auto with_args = [](std::vector<const char*> args, int index) {
    return sim::threads_from_arg(static_cast<int>(args.size()),
                                 const_cast<char**>(args.data()), index);
  };
  EXPECT_EQ(with_args({"bin", "4"}, 1), 4u);
  EXPECT_EQ(with_args({"bin", "0"}, 1), 0u);  // 0 = hardware, valid
  // Absent argument falls back (env unset in the test environment -> 0).
  EXPECT_EQ(with_args({"bin"}, 1), sim::threads_from_env(0));
  // Garbage, signs, suffixes and out-of-range values all throw instead of
  // silently spawning a surprise pool size.
  EXPECT_THROW(with_args({"bin", "-1"}, 1), std::invalid_argument);
  EXPECT_THROW(with_args({"bin", "x4"}, 1), std::invalid_argument);
  EXPECT_THROW(with_args({"bin", "4x"}, 1), std::invalid_argument);
  EXPECT_THROW(with_args({"bin", ""}, 1), std::invalid_argument);
  EXPECT_THROW(with_args({"bin", "99999999"}, 1), std::invalid_argument);
}

TEST(SweepExecutorTest, ZeroUnitsIsANoOp) {
  SweepExecutor executor(2);
  executor.run(0, [](std::size_t, WorkerContext&) { FAIL() << "unit ran"; });
}

TEST(SweepExecutorTest, ReusableAcrossRuns) {
  SweepExecutor executor(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    executor.run(10, [&](std::size_t unit, WorkerContext&) {
      sum.fetch_add(unit, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 45u) << "round " << round;
  }
}

TEST(SweepExecutorTest, PropagatesTheFirstException) {
  SweepExecutor executor(2);
  // The rethrown error names the failing unit and wraps the original
  // exception (throw_with_nested), so a million-scenario sweep failure says
  // WHICH scenario died.
  try {
    executor.run(20, [](std::size_t unit, WorkerContext&) {
      if (unit == 7) throw std::runtime_error("unit 7 failed");
    });
    FAIL() << "expected SweepUnitError";
  } catch (const sim::SweepUnitError& e) {
    EXPECT_EQ(e.unit(), 7u);
    EXPECT_LT(e.worker(), 2u);
    EXPECT_NE(std::string(e.what()).find("sweep unit 7 failed on worker"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("unit 7 failed"), std::string::npos);
    // The original exception rides along as the nested exception.
    bool nested_seen = false;
    try {
      std::rethrow_if_nested(e);
    } catch (const std::runtime_error& inner) {
      nested_seen = true;
      EXPECT_STREQ(inner.what(), "unit 7 failed");
    }
    EXPECT_TRUE(nested_seen);
  }
  // The pool must survive a failed job.
  std::atomic<std::size_t> ran{0};
  executor.run(4, [&](std::size_t, WorkerContext&) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 4u);
}

TEST(SweepExecutorTest, ReentrantRunIsRejectedNotCorrupted) {
  // run() admits one caller at a time; a unit function calling back into
  // run() must surface the rejection (via the job's error channel, wrapped
  // with unit context like any other unit failure), not silently re-shard
  // the in-flight job.
  SweepExecutor executor(2);
  try {
    executor.run(4, [&](std::size_t, WorkerContext&) {
      executor.run(1, [](std::size_t, WorkerContext&) {});
    });
    FAIL() << "expected SweepUnitError";
  } catch (const sim::SweepUnitError& e) {
    EXPECT_NE(std::string(e.what()).find("already driving a job"),
              std::string::npos);
    // The inner std::logic_error is preserved as the nested exception.
    EXPECT_THROW(std::rethrow_if_nested(e), std::logic_error);
  }
  // The pool stays usable afterwards.
  std::atomic<std::size_t> ran{0};
  executor.run(3, [&](std::size_t, WorkerContext&) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 3u);
}

TEST(ParseCountArgTest, StrictDecimalWithBound) {
  std::size_t out = 99;
  EXPECT_TRUE(sim::parse_count_arg("0", 10, out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(sim::parse_count_arg("10", 10, out));
  EXPECT_EQ(out, 10u);
  EXPECT_FALSE(sim::parse_count_arg("11", 10, out));    // above bound
  EXPECT_FALSE(sim::parse_count_arg("-1", 10, out));    // sign
  EXPECT_FALSE(sim::parse_count_arg("+5", 10, out));    // sign
  EXPECT_FALSE(sim::parse_count_arg("4x", 10, out));    // suffix
  EXPECT_FALSE(sim::parse_count_arg("x4", 10, out));    // prefix
  EXPECT_FALSE(sim::parse_count_arg("", 10, out));      // empty
  EXPECT_FALSE(sim::parse_count_arg(nullptr, 10, out)); // absent
}

TEST(SweepExecutorTest, RngStreamsDependOnUnitNotThreadCount) {
  constexpr std::size_t kUnits = 32;
  constexpr std::uint64_t kSeed = 0xABCDEF;

  const auto draws_with = [&](std::size_t threads) {
    SweepExecutor executor(threads);
    std::vector<double> first_draw(kUnits);
    executor.run(
        kUnits,
        [&](std::size_t unit, WorkerContext& ctx) {
          first_draw[unit] = ctx.rng().unit();
        },
        kSeed);
    return first_draw;
  };

  const auto serial = draws_with(1);
  EXPECT_EQ(serial, draws_with(3));
  EXPECT_EQ(serial, draws_with(8));
  // And the streams really are distinct per unit.
  EXPECT_NE(serial[0], serial[1]);
}

// ---------------------------------------------------------------------------
// Sweep determinism against the serial route_batch path

/// The six protocols of the library's comparison set.
std::vector<analysis::NamedFactory> six_protocols(const analysis::ProtocolSuite& suite) {
  return {suite.reconvergence(), suite.fcp(), suite.pr(),
          suite.pr_single_bit(), suite.lfa(), suite.lfa_node_protecting()};
}

void expect_identical_stretch(const analysis::StretchExperimentResult& serial,
                              const analysis::StretchExperimentResult& parallel,
                              std::size_t threads) {
  ASSERT_EQ(parallel.protocols.size(), serial.protocols.size());
  EXPECT_EQ(parallel.scenarios, serial.scenarios);
  EXPECT_EQ(parallel.affected_pairs, serial.affected_pairs);
  for (std::size_t i = 0; i < serial.protocols.size(); ++i) {
    const auto& s = serial.protocols[i];
    const auto& p = parallel.protocols[i];
    EXPECT_EQ(p.name, s.name);
    EXPECT_EQ(p.delivered, s.delivered) << s.name << " @ " << threads << " threads";
    EXPECT_EQ(p.dropped, s.dropped) << s.name << " @ " << threads << " threads";
    // Bit-identical doubles in the serial sample order, not approximate
    // equality: the canonical-order merge is exact by construction.
    EXPECT_EQ(p.stretches, s.stretches) << s.name << " @ " << threads << " threads";
  }
}

void expect_identical_coverage(const analysis::CoverageResult& serial,
                               const analysis::CoverageResult& parallel,
                               std::size_t threads) {
  ASSERT_EQ(parallel.protocols.size(), serial.protocols.size());
  EXPECT_EQ(parallel.scenarios, serial.scenarios);
  for (std::size_t i = 0; i < serial.protocols.size(); ++i) {
    const auto& s = serial.protocols[i];
    const auto& p = parallel.protocols[i];
    EXPECT_EQ(p.name, s.name);
    EXPECT_EQ(p.delivered, s.delivered) << s.name << " @ " << threads << " threads";
    EXPECT_EQ(p.dropped_reachable, s.dropped_reachable)
        << s.name << " @ " << threads << " threads";
    EXPECT_EQ(p.dropped_partitioned, s.dropped_partitioned)
        << s.name << " @ " << threads << " threads";
  }
}

TEST(ParallelSweepDeterminismTest, MatchesSerialOnRandomTopologies) {
  for (const std::uint64_t topo_seed : {1ULL, 2ULL, 3ULL}) {
    graph::Rng rng(topo_seed);
    const graph::Graph g = graph::random_two_edge_connected(10, 6, rng);
    const analysis::ProtocolSuite suite(g);
    const auto protocols = six_protocols(suite);

    // Random failure sets WITHOUT a connectivity filter: partitions must
    // classify identically too.
    auto scenarios = net::sample_any_failures(g, 2, 10, rng);
    for (auto& s : net::all_single_failures(g)) scenarios.push_back(std::move(s));

    const auto serial_stretch =
        analysis::run_stretch_experiment(g, scenarios, protocols);
    const auto serial_coverage =
        analysis::run_coverage_experiment(g, scenarios, protocols);

    for (const std::size_t threads : {1U, 2U, 8U}) {
      SweepExecutor executor(threads);
      expect_identical_stretch(
          serial_stretch,
          analysis::run_stretch_experiment(g, scenarios, protocols, executor),
          threads);
      expect_identical_coverage(
          serial_coverage,
          analysis::run_coverage_experiment(g, scenarios, protocols, executor),
          threads);
    }
  }
}

TEST(ParallelSweepDeterminismTest, AbileneAllSingleFailures) {
  const graph::Graph g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  const auto protocols = six_protocols(suite);
  const auto scenarios = net::all_single_failures(g);

  const auto serial = analysis::run_stretch_experiment(g, scenarios, protocols);
  for (const std::size_t threads : {1U, 2U, 8U}) {
    SweepExecutor executor(threads);
    expect_identical_stretch(
        serial, analysis::run_stretch_experiment(g, scenarios, protocols, executor),
        threads);
  }
}

TEST(ParallelSweepDeterminismTest, ScenarioRoutingCacheKeepsSweepsBitIdentical) {
  // The per-worker ScenarioRoutingCache hands reconverging protocols
  // delta-repaired tables whose content depends only on the failure set --
  // never on which worker ran the unit or what it processed before.  A
  // reconvergence-heavy protocol list over a scenario mix with partitions
  // must therefore stay bit-identical to the serial sweep at any thread
  // count.
  graph::Rng rng(0x5CA1E);
  const graph::Graph g = graph::random_two_edge_connected(12, 7, rng);
  const analysis::ProtocolSuite suite(g);
  // Two cache users per scenario (reconvergence twice) plus PR: exercises the
  // same-failure-set fast path inside one unit as well.
  const std::vector<analysis::NamedFactory> protocols = {
      suite.reconvergence(), suite.pr(), suite.reconvergence()};

  auto scenarios = net::all_single_failures(g);
  for (auto& s : net::sample_any_failures(g, 3, 12, rng)) {
    scenarios.push_back(std::move(s));
  }

  const auto serial = analysis::run_stretch_experiment(g, scenarios, protocols);
  const auto serial_cov = analysis::run_coverage_experiment(g, scenarios, protocols);
  for (const std::size_t threads : {1U, 2U, 8U}) {
    SweepExecutor executor(threads);
    expect_identical_stretch(
        serial, analysis::run_stretch_experiment(g, scenarios, protocols, executor),
        threads);
    expect_identical_coverage(
        serial_cov,
        analysis::run_coverage_experiment(g, scenarios, protocols, executor),
        threads);
  }
}

TEST(ParallelSweepDeterminismTest, AggregateCostBitIdenticalToSerialBatches) {
  // FlowStatsReduction merged in canonical shard order must reproduce the
  // serial per-scenario accumulation exactly, including the floating-point
  // cost total (same additions in the same order).
  graph::Rng rng(7);
  const graph::Graph g = graph::random_two_edge_connected(12, 8, rng);
  const analysis::ProtocolSuite suite(g);
  const auto scenarios = net::all_single_failures(g);
  const auto flows = sim::all_pairs_flows(g);

  // Serial reference: route every scenario with a fresh PR instance.
  std::vector<sim::FlowStatsReduction> serial_per_scenario(scenarios.size());
  for (std::size_t u = 0; u < scenarios.size(); ++u) {
    net::Network network(g);
    for (graph::EdgeId e : scenarios[u].elements()) network.fail_link(e);
    const auto proto = suite.pr().make(network);
    const auto batch = sim::route_batch(network, *proto, flows);
    for (const auto& fs : batch.stats()) serial_per_scenario[u].add(fs);
  }
  sim::FlowStatsReduction serial_total;
  for (const auto& shard : serial_per_scenario) serial_total.merge(shard);

  for (const std::size_t threads : {1U, 2U, 8U}) {
    SweepExecutor executor(threads);
    std::vector<sim::FlowStatsReduction> shards(scenarios.size());
    executor.run(scenarios.size(), [&](std::size_t unit, WorkerContext& ctx) {
      net::Network network(g);
      for (graph::EdgeId e : scenarios[unit].elements()) network.fail_link(e);
      const auto proto = suite.pr().make(network);
      sim::route_batch(network, *proto, flows, sim::TraceMode::kStats, ctx.batch);
      for (const auto& fs : ctx.batch.stats()) shards[unit].add(fs);
    });
    sim::FlowStatsReduction total;
    for (const auto& shard : shards) total.merge(shard);

    EXPECT_EQ(total.flows, serial_total.flows);
    EXPECT_EQ(total.delivered, serial_total.delivered);
    EXPECT_EQ(total.hops, serial_total.hops);
    // Bit-identical, not nearly-equal.
    EXPECT_EQ(total.cost, serial_total.cost) << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// ProtocolCoverage::coverage() pinned semantics (regression)

TEST(ProtocolCoverageTest, CoverageCornerSemanticsPinned) {
  const auto make = [](std::size_t delivered, std::size_t reachable,
                       std::size_t partitioned) {
    return analysis::ProtocolCoverage{"t", delivered, reachable, partitioned};
  };

  // A genuinely empty sweep (nothing routed) is vacuously covered.
  EXPECT_DOUBLE_EQ(make(0, 0, 0).coverage(), 1.0);
  // Traffic existed but every packet hit a partition: NOT the vacuous 1.0 --
  // nothing was delivered, so coverage is 0, and never NaN.
  EXPECT_DOUBLE_EQ(make(0, 0, 5).coverage(), 0.0);
  EXPECT_FALSE(std::isnan(make(0, 0, 5).coverage()));
  // Every recoverable packet dropped: zero coverage.
  EXPECT_DOUBLE_EQ(make(0, 4, 0).coverage(), 0.0);
  EXPECT_DOUBLE_EQ(make(0, 4, 3).coverage(), 0.0);
  // Ordinary mixtures: delivered / (delivered + dropped_reachable).
  EXPECT_DOUBLE_EQ(make(3, 1, 2).coverage(), 0.75);
  EXPECT_DOUBLE_EQ(make(4, 0, 0).coverage(), 1.0);
  EXPECT_DOUBLE_EQ(make(4, 0, 9).coverage(), 1.0);
}

TEST(ProtocolCoverageTest, MergeSumsCounters) {
  analysis::ProtocolCoverage a{"p", 3, 1, 2};
  const analysis::ProtocolCoverage b{"p", 4, 0, 5};
  a.merge(b);
  EXPECT_EQ(a.delivered, 7u);
  EXPECT_EQ(a.dropped_reachable, 1u);
  EXPECT_EQ(a.dropped_partitioned, 7u);
  EXPECT_EQ(a.total(), 15u);
}

}  // namespace
}  // namespace pr
