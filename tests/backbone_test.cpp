// Backbone-sweep equivalence suite: the batched tree-repair drive of
// RoutingDb::rebuild must be BIT-identical to both the legacy per-destination
// drive and the from-scratch oracle across generators, partitioning failure
// sets and scenario sequences; cached sweeps must be bit-identical at any
// thread count; incremental LFA resync must equal a fresh per-scenario
// derivation; and the IGP's copy-on-write overlays must forward exactly like
// full per-router tables while costing a fraction of their memory.
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/protocols.hpp"
#include "analysis/stretch.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "graph/spf_workspace.hpp"
#include "net/event_sim.hpp"
#include "net/failure_model.hpp"
#include "net/forwarding.hpp"
#include "route/igp.hpp"
#include "route/lfa.hpp"
#include "route/overlay.hpp"
#include "route/routing_db.hpp"
#include "route/scenario_cache.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"

namespace pr {
namespace {

using graph::EdgeId;
using graph::EdgeSet;
using graph::Graph;
using graph::NodeId;
using route::DiscriminatorKind;
using route::RepairDrive;
using route::RoutingDb;

/// Bit-identical table comparison: exact double equality (infinities
/// included), no tolerance -- the repair contract is exactness.
void expect_identical_tables(const RoutingDb& actual, const RoutingDb& expected,
                             const std::string& context) {
  const std::size_t n = actual.graph().node_count();
  for (NodeId dest = 0; dest < n; ++dest) {
    for (NodeId at = 0; at < n; ++at) {
      ASSERT_EQ(actual.next_dart(at, dest), expected.next_dart(at, dest))
          << context << ": next_dart(" << at << ", " << dest << ")";
      ASSERT_EQ(actual.cost(at, dest), expected.cost(at, dest))
          << context << ": dist(" << at << ", " << dest << ")";
      ASSERT_EQ(actual.hops(at, dest), expected.hops(at, dest))
          << context << ": hops(" << at << ", " << dest << ")";
    }
  }
  ASSERT_EQ(actual.max_discriminator(), expected.max_discriminator()) << context;
}

/// Order-sensitive FNV-1a digest of a whole table -- collapses the
/// bit-identity contract into one comparable word per scenario for the
/// thread-determinism sweeps.
std::uint64_t table_digest(const RoutingDb& db) {
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  const std::size_t n = db.graph().node_count();
  for (NodeId dest = 0; dest < n; ++dest) {
    for (NodeId at = 0; at < n; ++at) {
      mix(db.next_dart(at, dest));
      mix(std::bit_cast<std::uint64_t>(db.cost(at, dest)));
      mix(db.hops(at, dest));
    }
  }
  mix(db.max_discriminator());
  return h;
}

std::vector<EdgeSet> scenario_sequence(const Graph& g, graph::Rng& rng) {
  // Singles, pairs and triples -- the latter two routinely partition the
  // sparser generators, exercising unreachable-orphan restores.
  std::vector<EdgeSet> seq = net::sample_any_failures(g, 1, 6, rng);
  for (auto& s : net::sample_any_failures(g, 2, 6, rng)) seq.push_back(std::move(s));
  for (auto& s : net::sample_any_failures(g, 3, 4, rng)) seq.push_back(std::move(s));
  seq.emplace_back(g.edge_count());  // empty set: pristine restore mid-sequence
  for (auto& s : net::sample_any_failures(g, 2, 4, rng)) seq.push_back(std::move(s));
  return seq;
}

TEST(BatchedRepair, BothDrivesMatchScratchOracleAcrossGenerators) {
  graph::Rng rng(0xB0B);
  graph::IspParams small_isp;
  small_isp.core = 4;
  small_isp.aggs_per_core = 2;
  small_isp.edges_per_agg = 2;
  std::vector<std::pair<std::string, Graph>> graphs;
  graphs.emplace_back("r2ec", graph::random_two_edge_connected(18, 14, rng));
  graphs.emplace_back("erdos", graph::erdos_renyi(16, 0.25, rng));
  graphs.emplace_back("isp", graph::hierarchical_isp(small_isp, rng).graph);
  graphs.emplace_back("abilene", topo::abilene());

  for (const auto& [name, g] : graphs) {
    RoutingDb batched(g);
    RoutingDb legacy(g);
    graph::SpfWorkspace ws;
    for (const auto& failures : scenario_sequence(g, rng)) {
      batched.rebuild(failures, ws);  // default drive: kBatchedTrees
      legacy.rebuild(failures, ws, RepairDrive::kPerDestination);
      const RoutingDb fresh(g, failures.empty() ? nullptr : &failures);
      expect_identical_tables(batched, fresh, name + " batched");
      expect_identical_tables(legacy, fresh, name + " legacy");
    }
  }
}

TEST(BatchedRepair, WeightedDiscriminatorsAndFractionalWeights) {
  graph::Rng rng(0x31337);
  Graph g = graph::random_two_edge_connected(14, 10, rng);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    g.set_edge_weight(e, 1.0 + static_cast<double>(rng.below(4)));
  }
  RoutingDb db(g, nullptr, DiscriminatorKind::kWeightedCost);
  graph::SpfWorkspace ws;
  for (const auto& failures : net::all_single_failures(g)) {
    db.rebuild(failures, ws);
    expect_identical_tables(db, RoutingDb(g, &failures, DiscriminatorKind::kWeightedCost),
                            "weighted");
  }

  // Fractional weights under the hop discriminator: cost ties at non-integral
  // values stress the argmax column-max maintenance.
  Graph h = graph::random_two_edge_connected(14, 10, rng);
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    h.set_edge_weight(e, 0.5 + rng.unit());
  }
  RoutingDb hdb(h);
  for (const auto& failures : net::all_single_failures(h)) {
    hdb.rebuild(failures, ws);
    expect_identical_tables(hdb, RoutingDb(h, &failures), "fractional");
  }
}

TEST(BatchedRepair, SharedWorkspaceInterleavedAcrossDbs) {
  // One workspace driving two dbs of different sizes in alternation: the
  // epoch-stamped scratch must never leak orphan marks between trees, graphs
  // or calls.
  graph::Rng rng(0xAB);
  const Graph a = graph::random_two_edge_connected(12, 8, rng);
  const Graph b = graph::random_two_edge_connected(20, 16, rng);
  RoutingDb da(a);
  RoutingDb db_b(b);
  graph::SpfWorkspace ws;
  const auto fa = net::sample_any_failures(a, 2, 8, rng);
  const auto fb = net::sample_any_failures(b, 2, 8, rng);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    da.rebuild(fa[i], ws);
    db_b.rebuild(fb[i], ws);
    expect_identical_tables(da, RoutingDb(a, &fa[i]), "interleaved a");
    expect_identical_tables(db_b, RoutingDb(b, &fb[i]), "interleaved b");
  }
}

TEST(SweepDeterminism, CachedScenarioSweepBitIdenticalAcrossThreadCounts) {
  const Graph g = topo::geant();
  const auto scenarios = net::all_single_failures(g);

  // Serial from-scratch oracle digests.
  std::vector<std::uint64_t> oracle(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    oracle[i] = table_digest(RoutingDb(g, &scenarios[i]));
  }

  for (const std::size_t threads : {1U, 2U, 8U}) {
    sim::SweepExecutor executor(threads);
    std::vector<std::uint64_t> got(scenarios.size(), 0);
    executor.run(scenarios.size(), [&](std::size_t unit, sim::WorkerContext& ctx) {
      got[unit] = table_digest(ctx.routes.tables(g, scenarios[unit]));
    });
    EXPECT_EQ(got, oracle) << threads << " threads";
  }
}

void expect_identical_alternates(const route::LfaRouting& actual,
                                 const route::LfaRouting& expected,
                                 const Graph& g, const std::string& context) {
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      ASSERT_EQ(actual.alternate(v, t), expected.alternate(v, t))
          << context << ": alternate(" << v << ", " << t << ")";
    }
  }
}

TEST(LfaIncremental, DirectResyncMatchesFreshDerivation) {
  graph::Rng rng(0xFA);
  for (const route::LfaKind kind :
       {route::LfaKind::kLinkProtecting, route::LfaKind::kNodeProtecting}) {
    const Graph g = graph::random_two_edge_connected(14, 10, rng);
    RoutingDb db(g);
    route::LfaRouting lfa(db, kind);
    graph::SpfWorkspace ws;
    for (const auto& failures : scenario_sequence(g, rng)) {
      db.rebuild(failures, ws);
      lfa.resync();
      const RoutingDb fresh(g, failures.empty() ? nullptr : &failures);
      const route::LfaRouting want(fresh, kind);
      expect_identical_alternates(lfa, want, g, "direct resync");
      ASSERT_DOUBLE_EQ(lfa.alternate_coverage(), want.alternate_coverage());
    }
    EXPECT_GT(lfa.resyncs(), 0U);
  }
}

TEST(LfaIncremental, CacheServesPerScenarioAlternates) {
  graph::Rng rng(0xFB);
  const Graph g = graph::erdos_renyi(13, 0.3, rng);
  route::ScenarioRoutingCache cache;
  for (const auto& failures : scenario_sequence(g, rng)) {
    for (const route::LfaKind kind :
         {route::LfaKind::kLinkProtecting, route::LfaKind::kNodeProtecting}) {
      const route::LfaRouting& got = cache.lfa(g, failures, kind);
      const RoutingDb fresh(g, failures.empty() ? nullptr : &failures);
      const route::LfaRouting want(fresh, kind);
      expect_identical_alternates(got, want, g, "cache lfa");
    }
  }
  // Repeating a scenario verbatim is a pure hit: no extra pair recomputes.
  const EdgeSet last = [&] {
    EdgeSet s(g.edge_count());
    s.insert(0);
    return s;
  }();
  const auto& first = cache.lfa(g, last, route::LfaKind::kLinkProtecting);
  const std::uint64_t pairs_before = first.pairs_recomputed();
  const auto& again = cache.lfa(g, last, route::LfaKind::kLinkProtecting);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.pairs_recomputed(), pairs_before);
}

TEST(CowOverlay, OverlayRowEqualsRebuiltRowForEveryDestination) {
  graph::Rng rng(0xC0);
  const Graph g = graph::random_two_edge_connected(16, 12, rng);
  RoutingDb db(g);
  db.prepare_incremental();
  graph::SpfWorkspace ws;
  route::RouterTableOverlay overlay;
  overlay.reset(g.node_count());

  for (const auto& failures : net::sample_any_failures(g, 2, 10, rng)) {
    db.rebuild(failures, ws);
    for (const NodeId router : {NodeId{0}, NodeId{5}, NodeId{11}}) {
      overlay.assign_row(db, router);
      for (NodeId dest = 0; dest < g.node_count(); ++dest) {
        ASSERT_EQ(overlay.next_dart_or(dest, db.pristine_next_dart(router, dest)),
                  db.next_dart(router, dest))
            << "router " << router << " dest " << dest;
      }
    }
  }

  // Back to pristine: the overlay collapses to zero entries.
  db.rebuild(EdgeSet(g.edge_count()), ws);
  overlay.assign_row(db, 0);
  EXPECT_EQ(overlay.entries(), 0U);
}

struct IgpFixture {
  explicit IgpFixture(graph::Graph graph)
      : g(std::move(graph)), network(g), igp(sim, network) {}

  void fail(EdgeId e) {
    network.fail_link(e);
    igp.on_link_failure(e);
  }

  graph::Graph g;
  net::Network network;
  net::Simulator sim;
  route::LinkStateIgp igp;
};

TEST(CowOverlay, IgpForwardsLikeFullPerRouterTablesAfterConvergence) {
  IgpFixture fx(topo::geant());
  const std::size_t n = fx.g.node_count();
  fx.sim.at(0.0, [&] { fx.fail(0); });
  fx.sim.at(1.0, [&] { fx.fail(7); });
  fx.sim.run();
  ASSERT_TRUE(fx.igp.fully_converged());

  // Oracle: the former design's per-router state after convergence -- a full
  // RoutingDb built with the complete failure set.
  const RoutingDb truth(fx.g, &fx.network.failed_links());
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const auto trace = net::route_packet(fx.network, fx.igp.protocol(), s, t);
      if (truth.reachable(s, t)) {
        ASSERT_TRUE(trace.delivered()) << s << "->" << t;
        ASSERT_DOUBLE_EQ(trace.cost, truth.cost(s, t)) << s << "->" << t;
      } else {
        ASSERT_FALSE(trace.delivered()) << s << "->" << t;
      }
    }
  }

  // The COW state must be a small multiple of ONE shared table set, far from
  // the n full per-router copies it replaced.
  const std::size_t one_db_live = n * n * 16;  // next(4) + dist(8) + hops(4)
  const std::size_t naive_copies = n * one_db_live;
  EXPECT_GT(fx.igp.table_bytes(), 0U);
  EXPECT_LT(fx.igp.table_bytes(), naive_copies / 4);
}

// The post-convergence LFA factory's two paths -- fresh per-scenario tables
// (`make`) and cache-served resynced alternates (`make_cached`) -- must
// produce identical sweep results; and unlike the pristine-table variant the
// alternates really do track the scenario.
TEST(LfaIncremental, PostConvergenceFactoryPathsAgree) {
  const Graph g = topo::geant();
  const analysis::ProtocolSuite suite(g);
  const auto scenarios = net::all_single_failures(g);

  std::vector<analysis::NamedFactory> fresh = {suite.lfa_post_convergence()};
  ASSERT_TRUE(fresh[0].make_cached != nullptr);
  fresh[0].make_cached = nullptr;  // forces the fresh-tables path
  const std::vector<analysis::NamedFactory> cached = {suite.lfa_post_convergence()};

  const auto fresh_result = analysis::run_stretch_experiment(g, scenarios, fresh);
  const auto cached_result = analysis::run_stretch_experiment(g, scenarios, cached);
  ASSERT_EQ(fresh_result.protocols.size(), cached_result.protocols.size());
  const auto& f = fresh_result.protocols[0];
  const auto& c = cached_result.protocols[0];
  EXPECT_EQ(f.delivered, c.delivered);
  EXPECT_EQ(f.dropped, c.dropped);
  EXPECT_EQ(f.stretches, c.stretches);  // bit-exact doubles

  // Post-convergence alternates come from converged tables, so delivery must
  // be at least as good as the pristine-table variant's on the same sweep.
  const auto pristine_result =
      analysis::run_stretch_experiment(g, scenarios, {suite.lfa()});
  EXPECT_GE(c.delivered, pristine_result.protocols[0].delivered);
}

}  // namespace
}  // namespace pr
