// Exact reproduction of the paper's worked example: Figure 1's network and
// embedding, Table 1's cycle-following table at node D, and the three failure
// walkthroughs of Sections 4.2 and 4.3, asserted hop by hop.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/protocols.hpp"
#include "core/cycle_table.hpp"
#include "core/pr_protocol.hpp"
#include "embed/faces.hpp"
#include "graph/connectivity.hpp"
#include "topo/topologies.hpp"

namespace pr {
namespace {

using core::CycleFollowingTable;
using core::PacketRecycling;
using core::PrVariant;
using graph::DartId;
using graph::Graph;
using graph::NodeId;

class PaperExample : public ::testing::Test {
 protected:
  PaperExample()
      : g_(topo::figure1()),
        rot_(topo::figure1_rotation(g_)),
        faces_(embed::trace_faces(rot_)),
        cycles_(rot_),
        routes_(g_) {}

  [[nodiscard]] NodeId node(const char* label) const { return *g_.find_node(label); }
  [[nodiscard]] DartId dart(const char* from, const char* to) const {
    return *g_.find_dart(node(from), node(to));
  }
  /// Finds the face that contains a given dart and renders it as node labels.
  [[nodiscard]] std::vector<std::string> face_of(const char* from, const char* to) const {
    const auto& walk = faces_.faces[faces_.main_cycle_of(dart(from, to))];
    std::vector<std::string> names;
    names.reserve(walk.size());
    for (DartId d : walk) names.push_back(g_.node_label(g_.dart_tail(d)));
    return names;
  }

  Graph g_;
  embed::RotationSystem rot_;
  embed::FaceSet faces_;
  CycleFollowingTable cycles_;
  route::RoutingDb routes_;
};

TEST_F(PaperExample, GraphShape) {
  EXPECT_EQ(g_.node_count(), 6U);
  EXPECT_EQ(g_.edge_count(), 8U);
  EXPECT_EQ(g_.degree(node("D")), 3U);  // "node D has three interfaces"
  EXPECT_TRUE(graph::is_two_edge_connected(g_));
}

TEST_F(PaperExample, EmbeddingHasTheFourPaperCycles) {
  ASSERT_EQ(faces_.face_count(), 4U);
  EXPECT_EQ(embed::euler_genus(g_, faces_), 0);  // sphere embedding

  // c1 = F->D->E->F
  auto c1 = face_of("F", "D");
  ASSERT_EQ(c1.size(), 3U);
  // c2 = E->D->B->C->E
  auto c2 = face_of("E", "D");
  ASSERT_EQ(c2.size(), 4U);
  // c3 = B->A->C->B
  auto c3 = face_of("B", "A");
  ASSERT_EQ(c3.size(), 3U);
  // c4 (outer) = A->B->D->F->E->C->A
  auto c4 = face_of("A", "B");
  ASSERT_EQ(c4.size(), 6U);

  // Check the exact circular sequences (start point is arbitrary).
  const auto circular_eq = [](std::vector<std::string> walk,
                              std::vector<std::string> expect) {
    if (walk.size() != expect.size()) return false;
    for (std::size_t s = 0; s < walk.size(); ++s) {
      std::rotate(walk.begin(), walk.begin() + 1, walk.end());
      if (walk == expect) return true;
    }
    return false;
  };
  EXPECT_TRUE(circular_eq(c1, {"F", "D", "E"}));
  EXPECT_TRUE(circular_eq(c2, {"E", "D", "B", "C"}));
  EXPECT_TRUE(circular_eq(c3, {"B", "A", "C"}));
  EXPECT_TRUE(circular_eq(c4, {"A", "B", "D", "F", "E", "C"}));
}

TEST_F(PaperExample, EveryLinkOnExactlyTwoOppositeCycles) {
  for (graph::EdgeId e = 0; e < g_.edge_count(); ++e) {
    const DartId d = graph::make_dart(e, 0);
    EXPECT_NE(faces_.main_cycle_of(d), faces_.main_cycle_of(graph::reverse(d)))
        << "edge " << g_.dart_name(d)
        << ": Figure 1's cycles traverse every link in both directions";
  }
}

TEST_F(PaperExample, TableOneAtNodeD) {
  // Table 1 rows: incoming -> (cycle following, complementary).
  //   I_BD -> I_DF (c4), I_DE (c1)
  //   I_ED -> I_DB (c2), I_DF (c4)
  //   I_FD -> I_DE (c1), I_DB (c2)
  EXPECT_EQ(cycles_.cycle_following(dart("B", "D")), dart("D", "F"));
  EXPECT_EQ(cycles_.complementary(dart("D", "F")), dart("D", "E"));

  EXPECT_EQ(cycles_.cycle_following(dart("E", "D")), dart("D", "B"));
  EXPECT_EQ(cycles_.complementary(dart("D", "B")), dart("D", "F"));

  EXPECT_EQ(cycles_.cycle_following(dart("F", "D")), dart("D", "E"));
  EXPECT_EQ(cycles_.complementary(dart("D", "E")), dart("D", "B"));

  // The same three rows via the per-router table view.
  const auto rows = cycles_.rows_for(node("D"));
  ASSERT_EQ(rows.size(), 3U);
  for (const auto& row : rows) {
    EXPECT_EQ(cycles_.cycle_following(row.incoming), row.cycle_following);
    EXPECT_EQ(cycles_.complementary(row.cycle_following), row.complementary);
  }
}

TEST_F(PaperExample, ShortestPathTreeToFMatchesTheFigure) {
  // The thick-edge tree of Figure 1(b): A->B->D->E->F and C->E.
  const NodeId f = node("F");
  EXPECT_EQ(g_.dart_head(routes_.next_dart(node("A"), f)), node("B"));
  EXPECT_EQ(g_.dart_head(routes_.next_dart(node("B"), f)), node("D"));
  EXPECT_EQ(g_.dart_head(routes_.next_dart(node("D"), f)), node("E"));
  EXPECT_EQ(g_.dart_head(routes_.next_dart(node("E"), f)), f);
  EXPECT_EQ(g_.dart_head(routes_.next_dart(node("C"), f)), node("E"));

  // Hop discriminators quoted by the paper: D=2, E=1 (and B=3, C=2).
  EXPECT_EQ(routes_.discriminator(node("D"), f), 2U);
  EXPECT_EQ(routes_.discriminator(node("E"), f), 1U);
  EXPECT_EQ(routes_.discriminator(node("B"), f), 3U);
  EXPECT_EQ(routes_.discriminator(node("C"), f), 2U);
}

TEST_F(PaperExample, SingleFailureWalkthrough) {
  // Section 4.2 / Figure 1(b): fail D-E; A sends to F.
  // Expected: A-B-D (spf), divert at D onto c2: D-B-C-E, resume spf: E-F.
  net::Network network(g_);
  network.fail_link(*g_.find_edge(node("D"), node("E")));
  PacketRecycling pr(routes_, cycles_, PrVariant::kDistanceDiscriminator);
  const auto trace = net::route_packet(network, pr, node("A"), node("F"));
  ASSERT_TRUE(trace.delivered());
  const std::vector<NodeId> expect = {node("A"), node("B"), node("D"), node("B"),
                                      node("C"), node("E"), node("F")};
  EXPECT_EQ(trace.nodes, expect);
  // The DD bits were stamped with D's discriminator (2) and never restamped.
  EXPECT_EQ(trace.final_packet.dd, 2U);
  // PR bit was cleared at E before delivery.
  EXPECT_FALSE(trace.final_packet.pr_bit);
}

TEST_F(PaperExample, SingleFailureWorksWithOneBitVariantToo) {
  net::Network network(g_);
  network.fail_link(*g_.find_edge(node("D"), node("E")));
  PacketRecycling pr(routes_, cycles_, PrVariant::kSingleBit);
  const auto trace = net::route_packet(network, pr, node("A"), node("F"));
  ASSERT_TRUE(trace.delivered());
  const std::vector<NodeId> expect = {node("A"), node("B"), node("D"), node("B"),
                                      node("C"), node("E"), node("F")};
  EXPECT_EQ(trace.nodes, expect);
}

TEST_F(PaperExample, DualFailureSection42Walkthrough) {
  // Section 4.2's second scenario: fail D-E and A-B.
  // "packets would first follow cycle c3 (complementary to c4 over A->B) to
  //  reach B, where normal routing would resume - only to fail again in D,
  //  from here recovery is identical to the previous example."
  // Expected: A (divert onto c3) -> C -> B (resume spf) -> D (divert onto c2)
  //           -> B -> C -> E (resume spf) -> F.
  net::Network network(g_);
  network.fail_link(*g_.find_edge(node("D"), node("E")));
  network.fail_link(*g_.find_edge(node("A"), node("B")));
  PacketRecycling pr(routes_, cycles_, PrVariant::kDistanceDiscriminator);
  const auto trace = net::route_packet(network, pr, node("A"), node("F"));
  ASSERT_TRUE(trace.delivered());
  const std::vector<NodeId> expect = {node("A"), node("C"), node("B"), node("D"),
                                      node("B"), node("C"), node("E"), node("F")};
  EXPECT_EQ(trace.nodes, expect);
}

TEST_F(PaperExample, DualFailureSection43Walkthrough) {
  // Section 4.3 / Figure 1(c): fail D-E and B-C.
  // Expected: A-B-D (spf), divert at D (dd=2) toward B; B's cf out B->C is
  // down, B's dd 3 >= 2 so continue on c3 via A to C; C's cf out C->B is
  // down, C's dd 2 >= 2 so continue on c2 to E; E's cf out E->D is down,
  // E's dd 1 < 2 so resume spf: E-F.
  net::Network network(g_);
  network.fail_link(*g_.find_edge(node("D"), node("E")));
  network.fail_link(*g_.find_edge(node("B"), node("C")));
  PacketRecycling pr(routes_, cycles_, PrVariant::kDistanceDiscriminator);
  const auto trace = net::route_packet(network, pr, node("A"), node("F"));
  ASSERT_TRUE(trace.delivered());
  const std::vector<NodeId> expect = {node("A"), node("B"), node("D"), node("B"),
                                      node("A"), node("C"), node("E"), node("F")};
  EXPECT_EQ(trace.nodes, expect);
  EXPECT_EQ(trace.final_packet.dd, 2U);  // stamped once at D
  // Termination comparisons happened at B, C and E.
  EXPECT_EQ(pr.termination_checks(), 3U);
}

TEST_F(PaperExample, Section43ScenarioLoopsUnderOneBitVariant) {
  // The paper motivates the DD bits with exactly this scenario: without them
  // the packet returns to the shortest path and meets D->E forever.
  net::Network network(g_);
  network.fail_link(*g_.find_edge(node("D"), node("E")));
  network.fail_link(*g_.find_edge(node("B"), node("C")));
  PacketRecycling pr(routes_, cycles_, PrVariant::kSingleBit);
  const auto trace = net::route_packet(network, pr, node("A"), node("F"));
  EXPECT_FALSE(trace.delivered());
  EXPECT_EQ(trace.drop_reason, net::DropReason::kTtlExpired);
}

TEST_F(PaperExample, RenderTableMatchesPaperNotation) {
  const auto text = cycles_.render_table(node("D"), faces_);
  EXPECT_NE(text.find("I_BD"), std::string::npos);
  EXPECT_NE(text.find("I_DF"), std::string::npos);
  EXPECT_NE(text.find("I_DE"), std::string::npos);
  EXPECT_NE(text.find("I_DB"), std::string::npos);
  EXPECT_NE(text.find("I_ED"), std::string::npos);
  EXPECT_NE(text.find("I_FD"), std::string::npos);
}

}  // namespace
}  // namespace pr
