// Hierarchical ISP generator invariants: tier layout and labels, per-tier
// degree structure, 2-edge-connectivity (the paper's precondition), and
// bit-identical output for a fixed seed.
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"

namespace pr::graph {
namespace {

IspTopology make(std::uint64_t seed, const IspParams& params = {}) {
  Rng rng(seed);
  return hierarchical_isp(params, rng);
}

TEST(HierarchicalIsp, TierLayoutCountsAndLabels) {
  const IspParams params;
  const IspTopology t = make(0xA11CE, params);
  const Graph& g = t.graph;

  EXPECT_EQ(t.core_count, params.core);
  EXPECT_EQ(t.aggregation_count, params.core * params.aggs_per_core);
  EXPECT_EQ(t.edge_router_count, t.aggregation_count * params.edges_per_agg);
  EXPECT_EQ(g.node_count(),
            t.core_count + t.aggregation_count + t.edge_router_count);

  // Tier-contiguous ids with "c<i>" / "a<i>" / "e<i>" labels.
  EXPECT_EQ(g.node_label(0), "c0");
  EXPECT_EQ(g.node_label(static_cast<NodeId>(t.core_count)), "a0");
  EXPECT_EQ(g.node_label(static_cast<NodeId>(t.core_count + t.aggregation_count)),
            "e0");
}

TEST(HierarchicalIsp, TierDegreeInvariants) {
  const IspParams params;
  const IspTopology t = make(0xBEEF, params);
  const Graph& g = t.graph;
  const auto degree = [&g](NodeId v) { return g.out_darts(v).size(); };

  const NodeId agg_base = static_cast<NodeId>(t.core_count);
  const NodeId edge_base = static_cast<NodeId>(t.core_count + t.aggregation_count);

  // Edge routers are exactly dual-homed: no lateral links touch this tier.
  for (NodeId v = edge_base; v < g.node_count(); ++v) EXPECT_EQ(degree(v), 2U);

  // Aggregations carry their two uplinks plus their edge fan-in (lateral
  // peerings only add).
  for (NodeId v = agg_base; v < edge_base; ++v) {
    EXPECT_GE(degree(v), 2U + 0U);
  }

  // Core: ring degree plus homed aggregations; the preferential chords give
  // an uneven backbone (some core carries more than the minimum).
  std::size_t core_degree_total = 0;
  std::size_t core_degree_max = 0;
  for (NodeId v = 0; v < agg_base; ++v) {
    EXPECT_GE(degree(v), 2U);  // ring membership at minimum
    core_degree_total += degree(v);
    core_degree_max = std::max(core_degree_max, degree(v));
  }
  // Each core homes aggs_per_core aggregations and backs up as many again.
  EXPECT_GE(core_degree_total, t.core_count * (2 + 2 * params.aggs_per_core));
  EXPECT_GT(core_degree_max * t.core_count, core_degree_total)
      << "preferential chords should skew the backbone degree distribution";
}

TEST(HierarchicalIsp, TwoEdgeConnectedAcrossSeedsAndSizes) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xF00ULL}) {
    const IspTopology small = make(seed);
    EXPECT_TRUE(is_two_edge_connected(small.graph)) << "seed " << seed;
  }
  // A backbone-bench-sized instance stays 2-edge-connected too.
  Rng rng(7);
  const IspTopology mid = hierarchical_isp(sized_isp_params(256), rng);
  EXPECT_GE(mid.graph.node_count(), 200U);
  EXPECT_TRUE(is_two_edge_connected(mid.graph));
}

TEST(HierarchicalIsp, DeterministicForFixedSeed) {
  const IspTopology a = make(0x5EED);
  const IspTopology b = make(0x5EED);
  ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
  ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (EdgeId e = 0; e < a.graph.edge_count(); ++e) {
    EXPECT_EQ(a.graph.edge_u(e), b.graph.edge_u(e));
    EXPECT_EQ(a.graph.edge_v(e), b.graph.edge_v(e));
    EXPECT_EQ(a.graph.edge_weight(e), b.graph.edge_weight(e));
  }
  // ... and a different seed rewires at least something.
  const IspTopology c = make(0x5EED + 1);
  bool differs = c.graph.edge_count() != a.graph.edge_count();
  for (EdgeId e = 0; !differs && e < a.graph.edge_count(); ++e) {
    differs = a.graph.edge_u(e) != c.graph.edge_u(e) ||
              a.graph.edge_v(e) != c.graph.edge_v(e);
  }
  EXPECT_TRUE(differs);
}

TEST(HierarchicalIsp, SizedParamsLandNearTarget) {
  for (const std::size_t target : {256U, 1024U, 4096U}) {
    const IspParams p = sized_isp_params(target);
    Rng rng(9);
    const IspTopology t = hierarchical_isp(p, rng);
    const double ratio = static_cast<double>(t.graph.node_count()) /
                         static_cast<double>(target);
    EXPECT_GT(ratio, 0.8) << target;
    EXPECT_LT(ratio, 1.25) << target;
  }
}

TEST(HierarchicalIsp, RejectsDegenerateParams) {
  Rng rng(1);
  IspParams bad;
  bad.core = 2;
  EXPECT_THROW((void)hierarchical_isp(bad, rng), std::invalid_argument);
  IspParams no_aggs;
  no_aggs.aggs_per_core = 0;
  EXPECT_THROW((void)hierarchical_isp(no_aggs, rng), std::invalid_argument);
  IspParams bad_prob;
  bad_prob.agg_cross_link_prob = 1.5;
  EXPECT_THROW((void)hierarchical_isp(bad_prob, rng), std::invalid_argument);
  EXPECT_THROW((void)sized_isp_params(10), std::invalid_argument);
}

}  // namespace
}  // namespace pr::graph
