// Incremental-SPF equivalence suite: RoutingDb::rebuild (delta repair via
// graph::SpfWorkspace) must be BIT-identical -- next_dart, dist and hops, for
// every (at, dest) pair -- to constructing a fresh RoutingDb with the same
// failure set excluded, across randomized topologies, single/multi-link and
// partitioning failure sets, and arbitrary rebuild sequences; and rebuilding
// with the empty set must restore the pristine tables exactly.
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "graph/spf_workspace.hpp"
#include "net/failure_model.hpp"
#include "route/routing_db.hpp"
#include "route/scenario_cache.hpp"
#include "topo/topologies.hpp"

namespace pr {
namespace {

using graph::EdgeId;
using graph::EdgeSet;
using graph::Graph;
using graph::NodeId;
using route::DiscriminatorKind;
using route::RoutingDb;

/// Bit-identical table comparison: exact double equality (infinities
/// included), no tolerance -- the repair contract is exactness.
void expect_identical_tables(const RoutingDb& actual, const RoutingDb& expected,
                             const std::string& context) {
  const std::size_t n = actual.graph().node_count();
  for (NodeId dest = 0; dest < n; ++dest) {
    for (NodeId at = 0; at < n; ++at) {
      ASSERT_EQ(actual.next_dart(at, dest), expected.next_dart(at, dest))
          << context << ": next_dart(" << at << ", " << dest << ")";
      ASSERT_EQ(actual.cost(at, dest), expected.cost(at, dest))
          << context << ": dist(" << at << ", " << dest << ")";
      ASSERT_EQ(actual.hops(at, dest), expected.hops(at, dest))
          << context << ": hops(" << at << ", " << dest << ")";
    }
  }
  EXPECT_EQ(actual.max_discriminator(), expected.max_discriminator()) << context;
}

EdgeSet failure_set(const Graph& g, std::initializer_list<EdgeId> edges) {
  EdgeSet s(g.edge_count());
  for (const EdgeId e : edges) s.insert(e);
  return s;
}

/// Brute-force reference for the cached max_discriminator (the pre-cache
/// implementation's double-checked loop).
std::uint32_t brute_force_max_discriminator(const RoutingDb& db) {
  std::uint32_t best = 0;
  const std::size_t n = db.graph().node_count();
  for (NodeId dest = 0; dest < n; ++dest) {
    for (NodeId at = 0; at < n; ++at) {
      if (db.reachable(at, dest)) best = std::max(best, db.discriminator(at, dest));
    }
  }
  return best;
}

TEST(SpfWorkspace, FullBuildMatchesReferenceDijkstra) {
  graph::Rng rng(0x51);
  for (int round = 0; round < 5; ++round) {
    Graph g = graph::random_two_edge_connected(14, 10, rng);
    // Integer random weights exercise cost ties with differing hop counts.
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      g.set_edge_weight(e, 1.0 + static_cast<double>(rng.below(3)));
    }
    graph::SpfWorkspace ws;
    std::vector<graph::Weight> dist(g.node_count());
    std::vector<std::uint32_t> hops(g.node_count());
    std::vector<graph::DartId> next(g.node_count());
    for (NodeId dest = 0; dest < g.node_count(); ++dest) {
      ws.full_build(g, dest, nullptr, dist.data(), hops.data(), next.data());
      const auto spt = graph::shortest_paths_to(g, dest);
      EXPECT_EQ(dist, spt.dist);
      EXPECT_EQ(hops, spt.hops);
      EXPECT_EQ(next, spt.next_dart);
    }
  }
}

TEST(SpfIncremental, SingleFailuresBitIdenticalOnRandomGraphs) {
  graph::Rng rng(0xBEEF);
  for (int round = 0; round < 4; ++round) {
    const Graph g = graph::random_two_edge_connected(16, 12, rng);
    RoutingDb db(g);
    graph::SpfWorkspace ws;
    for (const auto& failures : net::all_single_failures(g)) {
      db.rebuild(failures, ws);
      const RoutingDb fresh(g, &failures);
      expect_identical_tables(db, fresh, "single failure");
    }
  }
}

TEST(SpfIncremental, MultiFailuresIncludingPartitions) {
  graph::Rng rng(0xD00D);
  for (int round = 0; round < 3; ++round) {
    // Erdos-Renyi graphs have bridges and low-degree nodes, so random 2- and
    // 3-subsets routinely partition the graph -- exactly the orphaned
    // subtrees that must stay unreachable after repair.
    const Graph g = graph::erdos_renyi(14, 0.25, rng);
    RoutingDb db(g);
    graph::SpfWorkspace ws;
    for (const std::size_t k : {2U, 3U}) {
      for (const auto& failures : net::sample_any_failures(g, k, 12, rng)) {
        db.rebuild(failures, ws);
        const RoutingDb fresh(g, &failures);
        expect_identical_tables(db, fresh, "multi failure k=" + std::to_string(k));
      }
    }
  }
}

TEST(SpfIncremental, PartitioningFailuresOnRing) {
  // Any two ring edges partition the cycle: the canonical orphan case.
  const Graph g = graph::ring(8);
  RoutingDb db(g);
  graph::SpfWorkspace ws;
  const EdgeSet failures = failure_set(g, {1, 5});
  db.rebuild(failures, ws);
  const RoutingDb fresh(g, &failures);
  expect_identical_tables(db, fresh, "ring partition");
  // Nodes across the cut really are unreachable now.
  EXPECT_FALSE(db.reachable(3, 7));
}

TEST(SpfIncremental, WeightedDiscriminatorAndFractionalWeights) {
  graph::Rng rng(0xF00D);
  // Integer weights with the weighted-cost discriminator...
  Graph g = graph::random_two_edge_connected(12, 8, rng);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    g.set_edge_weight(e, 1.0 + static_cast<double>(rng.below(4)));
  }
  RoutingDb db(g, nullptr, DiscriminatorKind::kWeightedCost);
  graph::SpfWorkspace ws;
  for (const auto& failures : net::all_single_failures(g)) {
    db.rebuild(failures, ws);
    const RoutingDb fresh(g, &failures, DiscriminatorKind::kWeightedCost);
    expect_identical_tables(db, fresh, "weighted discriminator");
  }
  // ...and fractional weights under the hop discriminator (cost ties at
  // non-integral values).
  Graph h = graph::random_two_edge_connected(12, 8, rng);
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    h.set_edge_weight(e, 0.5 + rng.unit());
  }
  RoutingDb hdb(h);
  for (const auto& failures : net::all_single_failures(h)) {
    hdb.rebuild(failures, ws);
    expect_identical_tables(hdb, RoutingDb(h, &failures), "fractional weights");
  }
}

TEST(SpfIncremental, RebuildSequencesAndPristineRestore) {
  graph::Rng rng(0xCAFE);
  const Graph g = graph::random_two_edge_connected(15, 10, rng);
  const RoutingDb pristine(g);
  RoutingDb db(g);
  graph::SpfWorkspace ws;

  // Arbitrary scenario sequence: each rebuild must land exactly on the
  // from-scratch tables for ITS failure set, regardless of history.
  std::vector<EdgeSet> sequence = net::sample_any_failures(g, 2, 8, rng);
  for (auto& s : net::sample_any_failures(g, 4, 4, rng)) sequence.push_back(std::move(s));
  for (const auto& failures : sequence) {
    db.rebuild(failures, ws);
    expect_identical_tables(db, RoutingDb(g, &failures), "sequence step");
  }

  // Reverting to the empty failure set restores the pristine tables exactly.
  db.rebuild(EdgeSet(g.edge_count()), ws);
  expect_identical_tables(db, pristine, "pristine restore");
}

TEST(SpfIncremental, RealTopologiesSingleFailures) {
  for (const auto& [name, g] :
       {std::pair{"abilene", topo::abilene()}, {"teleglobe", topo::teleglobe()},
        {"geant", topo::geant()}}) {
    RoutingDb db(g);
    graph::SpfWorkspace ws;
    for (const auto& failures : net::all_single_failures(g)) {
      db.rebuild(failures, ws);
      expect_identical_tables(db, RoutingDb(g, &failures), name);
    }
  }
}

TEST(SpfIncremental, MaxDiscriminatorCachedMatchesBruteForce) {
  graph::Rng rng(0xACE);
  const Graph g = graph::random_two_edge_connected(14, 8, rng);
  RoutingDb db(g);
  EXPECT_EQ(db.max_discriminator(), brute_force_max_discriminator(db));
  graph::SpfWorkspace ws;
  for (const auto& failures : net::sample_any_failures(g, 2, 10, rng)) {
    db.rebuild(failures, ws);
    EXPECT_EQ(db.max_discriminator(), brute_force_max_discriminator(db));
  }
}

TEST(SpfIncremental, RebuildRejectsExcludedBaseline) {
  const Graph g = graph::ring(6);
  const EdgeSet baseline = failure_set(g, {0});
  RoutingDb db(g, &baseline);
  graph::SpfWorkspace ws;
  EXPECT_THROW(db.rebuild(failure_set(g, {1}), ws), std::logic_error);
  // An EMPTY baseline pointer counts as pristine and rebuilds fine.
  RoutingDb empty_baseline(g, nullptr);
  EXPECT_NO_THROW(empty_baseline.rebuild(failure_set(g, {1}), ws));
}

TEST(SpfIncremental, RebuildRejectsMutatedGraph) {
  // The repair mixes the pristine snapshot with the live graph, so mutating
  // the graph between rebuilds must fail loudly instead of silently
  // producing tables that match neither version.
  Graph g = graph::ring(6);
  RoutingDb db(g);
  graph::SpfWorkspace ws;
  EXPECT_NO_THROW(db.rebuild(failure_set(g, {0}), ws));
  g.add_edge(0, 3);
  EdgeSet failures(g.edge_count());
  failures.insert(1);
  EXPECT_THROW(db.rebuild(failures, ws), std::logic_error);
}

TEST(ScenarioRoutingCache, ServesBitIdenticalTablesAndCountsHits) {
  const Graph g = topo::abilene();
  route::ScenarioRoutingCache cache;

  const auto scenarios = net::all_single_failures(g);
  EXPECT_EQ(cache.pristine_builds(), 0U);
  for (const auto& failures : scenarios) {
    const RoutingDb& cached = cache.tables(g, failures);
    expect_identical_tables(cached, RoutingDb(g, &failures), "cache");
  }
  EXPECT_EQ(cache.pristine_builds(), 1U);
  EXPECT_EQ(cache.rebuilds(), scenarios.size());

  // Repeating the previous failure set verbatim is a hit (no rebuild), and
  // returns the same underlying db.
  const RoutingDb& again = cache.tables(g, scenarios.back());
  EXPECT_EQ(&again, &cache.tables(g, scenarios.back()));
  EXPECT_GE(cache.hits(), 2U);
  EXPECT_EQ(cache.rebuilds(), scenarios.size());

  // Switching graphs rebuilds the pristine db for the new one.
  const Graph h = topo::geant();
  const auto h_failures = net::all_single_failures(h);
  expect_identical_tables(cache.tables(h, h_failures.front()),
                          RoutingDb(h, &h_failures.front()), "cache after switch");
  EXPECT_EQ(cache.pristine_builds(), 2U);
}

TEST(ScenarioRoutingCache, SurvivesGraphAddressReuse) {
  // Regression: the cache must key on (address, structure_id), not address
  // alone.  A sweep over successive topologies destroys each graph before
  // building the next, and the allocator routinely hands the new Graph the
  // old one's address -- serving the stale tables there read out of bounds
  // (caught as a hang/ASan failure in bench_scaling).
  route::ScenarioRoutingCache cache;
  auto first = std::make_unique<Graph>(graph::ring(5));
  const EdgeSet first_failure = failure_set(*first, {0});
  expect_identical_tables(cache.tables(*first, first_failure),
                          RoutingDb(*first, &first_failure), "first graph");
  first.reset();

  // Larger graph, plausibly at the recycled address; must rebuild pristine.
  auto second = std::make_unique<Graph>(graph::ring(12));
  const EdgeSet second_failure = failure_set(*second, {3});
  expect_identical_tables(cache.tables(*second, second_failure),
                          RoutingDb(*second, &second_failure), "second graph");
  EXPECT_EQ(cache.pristine_builds(), 2U);

  // Mutating the same object (new edge) must also invalidate.
  const graph::EdgeId chord = second->add_edge(0, 6);
  EdgeSet chord_failure(second->edge_count());
  chord_failure.insert(chord);
  expect_identical_tables(cache.tables(*second, chord_failure),
                          RoutingDb(*second, &chord_failure), "after mutation");
  EXPECT_EQ(cache.pristine_builds(), 3U);
}

}  // namespace
}  // namespace pr
