// Unit tests for the Network link-state overlay and the packet walker.
#include "net/network.hpp"

#include <gtest/gtest.h>

#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"
#include "net/forwarding.hpp"

namespace pr::net {
namespace {

TEST(Network, LinksStartUp) {
  const auto g = graph::ring(4);
  const Network net(g);
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_TRUE(net.link_up(e));
    EXPECT_TRUE(net.dart_usable(graph::make_dart(e, 0)));
    EXPECT_TRUE(net.dart_usable(graph::make_dart(e, 1)));
  }
  EXPECT_EQ(net.failure_count(), 0U);
}

TEST(Network, FailureIsBidirectional) {
  const auto g = graph::ring(4);
  Network net(g);
  net.fail_link(0);
  EXPECT_FALSE(net.link_up(0));
  EXPECT_FALSE(net.dart_usable(graph::make_dart(0, 0)));
  EXPECT_FALSE(net.dart_usable(graph::make_dart(0, 1)));
  net.restore_link(0);
  EXPECT_TRUE(net.link_up(0));
}

TEST(Network, NodeFailureDownsAllIncidentLinks) {
  const auto g = graph::complete(4);
  Network net(g);
  net.fail_node(0);
  EXPECT_EQ(net.failure_count(), 3U);
  for (graph::DartId d : g.out_darts(0)) {
    EXPECT_FALSE(net.dart_usable(d));
  }
  // Links between other nodes stay up.
  EXPECT_TRUE(net.link_up(*g.find_edge(1, 2)));
}

TEST(Network, ResetRestoresEverything) {
  const auto g = graph::ring(5);
  Network net(g);
  net.fail_link(1);
  net.fail_link(3);
  net.reset();
  EXPECT_EQ(net.failure_count(), 0U);
}

TEST(Network, FailedLinksUsableAsDijkstraFilter) {
  const auto g = graph::ring(4);
  Network net(g);
  net.fail_link(0);
  const auto spt = graph::shortest_paths_to(g, 0, &net.failed_links());
  EXPECT_TRUE(spt.reachable(1));
}

TEST(Network, Validation) {
  const auto g = graph::ring(3);
  Network net(g);
  EXPECT_THROW(net.fail_link(99), std::out_of_range);
  EXPECT_THROW(net.restore_link(99), std::out_of_range);
  EXPECT_THROW(net.set_link_delay(0, -1.0), std::invalid_argument);
  EXPECT_THROW(net.set_processing_delay(-1.0), std::invalid_argument);
}

TEST(Network, DelayDefaultsAndOverrides) {
  const auto g = graph::ring(3);
  Network net(g);
  EXPECT_DOUBLE_EQ(net.link_delay(0), 1e-3);
  net.set_link_delay(0, 5e-3);
  EXPECT_DOUBLE_EQ(net.link_delay(0), 5e-3);
  net.set_processing_delay(1e-6);
  EXPECT_DOUBLE_EQ(net.processing_delay(), 1e-6);
}

// A trivial protocol for exercising the walker contract: takes the first
// usable interface, avoiding the one it arrived on when possible.
class HotPotato final : public ForwardingProtocol {
 public:
  ForwardingDecision forward(const Network& net, NodeId at, DartId arrived_over,
                             Packet& packet) override {
    if (at == packet.destination) return ForwardingDecision::deliver();
    DartId fallback = graph::kInvalidDart;
    for (DartId d : net.graph().out_darts(at)) {
      if (!net.dart_usable(d)) continue;
      if (arrived_over != graph::kInvalidDart && d == graph::reverse(arrived_over)) {
        fallback = d;
        continue;
      }
      return ForwardingDecision::forward(d);
    }
    if (fallback != graph::kInvalidDart) return ForwardingDecision::forward(fallback);
    return ForwardingDecision::drop(DropReason::kNoRoute);
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "hot-potato"; }
};

// Deliberately broken: forwards over failed links.
class LawBreaker final : public ForwardingProtocol {
 public:
  ForwardingDecision forward(const Network& net, NodeId at, DartId,
                             Packet& packet) override {
    if (at == packet.destination) return ForwardingDecision::deliver();
    return ForwardingDecision::forward(net.graph().out_darts(at)[0]);
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "law-breaker"; }
};

TEST(RoutePacket, DeliversOnALine) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Network net(g);
  HotPotato proto;
  const auto trace = route_packet(net, proto, 0, 2);
  ASSERT_TRUE(trace.delivered());
  EXPECT_EQ(trace.hops, 2U);
  EXPECT_DOUBLE_EQ(trace.cost, 2.0);
  EXPECT_EQ(trace.nodes.size(), 3U);
}

TEST(RoutePacket, SourceEqualsDestination) {
  const auto g = graph::ring(3);
  Network net(g);
  HotPotato proto;
  const auto trace = route_packet(net, proto, 1, 1);
  ASSERT_TRUE(trace.delivered());
  EXPECT_EQ(trace.hops, 0U);
  EXPECT_DOUBLE_EQ(trace.cost, 0.0);
}

// Always bounces the packet straight back where it came from.
class Bouncer final : public ForwardingProtocol {
 public:
  ForwardingDecision forward(const Network& net, NodeId at, DartId arrived_over,
                             Packet& packet) override {
    if (at == packet.destination) return ForwardingDecision::deliver();
    const DartId out = arrived_over == graph::kInvalidDart
                           ? net.graph().out_darts(at)[0]
                           : graph::reverse(arrived_over);
    return ForwardingDecision::forward(out);
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "bouncer"; }
};

TEST(RoutePacket, TtlGuardsAgainstLoops) {
  const auto g = graph::ring(4);
  Network net(g);
  Bouncer proto;  // ping-pongs between the first two nodes forever
  const auto trace = route_packet(net, proto, 0, 2, 8);
  EXPECT_FALSE(trace.delivered());
  EXPECT_EQ(trace.drop_reason, DropReason::kTtlExpired);
  EXPECT_EQ(trace.hops, 8U);
}

TEST(RoutePacket, ProtocolViolationThrows) {
  const auto g = graph::ring(3);
  Network net(g);
  net.fail_link(0);
  LawBreaker proto;
  // Node 0's first out-dart is over edge 0, which is down.
  EXPECT_THROW((void)route_packet(net, proto, 0, 1), std::logic_error);
}

TEST(RoutePacket, EndpointValidation) {
  const auto g = graph::ring(3);
  Network net(g);
  HotPotato proto;
  EXPECT_THROW((void)route_packet(net, proto, 0, 99), std::out_of_range);
  EXPECT_THROW((void)route_packet(net, proto, 99, 0), std::out_of_range);
}

TEST(DefaultTtl, ScalesWithEdges) {
  const auto small = graph::ring(3);
  const auto large = graph::complete(10);
  EXPECT_LT(default_ttl(small), default_ttl(large));
  EXPECT_GE(default_ttl(small), 4 * small.edge_count());
}

}  // namespace
}  // namespace pr::net
