// Robustness suite for controlled sweeps (sim/run_control.hpp +
// sim/fault_plan.hpp through SweepExecutor).
//
// The contract under test is DETERMINISTIC TRUNCATION: however a controlled
// sweep stops -- budget, cancel, deadline, contained unit error, injected
// fault -- the surviving results are the canonical prefix [0, k) of the unit
// order, the ordered-reduce sequence is exactly 0, 1, ..., k-1, and the
// executor remains usable.  Timing faults (stalls) may reshuffle completion
// order but must never change results; that is what makes checkpoint/resume
// exact downstream.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/fault_plan.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/run_control.hpp"

namespace pr {
namespace {

using sim::FaultPlan;
using sim::InjectedFault;
using sim::RunControl;
using sim::StopReason;
using sim::SweepExecutor;
using sim::SweepOutcome;
using sim::UnitErrorPolicy;
using sim::WorkerContext;

/// Collects the ordered-reduce sequence; ReduceFn is serialised by the
/// executor so no locking is needed here.
struct ReduceLog {
  std::vector<std::size_t> units;
  SweepExecutor::ReduceFn fn() {
    return [this](std::size_t unit) { units.push_back(unit); };
  }
  [[nodiscard]] bool is_prefix(std::size_t k) const {
    if (units.size() != k) return false;
    for (std::size_t i = 0; i < k; ++i) {
      if (units[i] != i) return false;
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// RunControl and FaultPlan mechanics

TEST(RunControlTest, CancelIsStickyAndResettable) {
  RunControl control;
  EXPECT_FALSE(control.cancelled());
  control.cancel();
  EXPECT_TRUE(control.cancelled());
  control.cancel();  // idempotent
  EXPECT_TRUE(control.cancelled());
  control.reset_cancel();
  EXPECT_FALSE(control.cancelled());
}

TEST(RunControlTest, DeadlineExpiryTracksTheClock) {
  RunControl control;
  EXPECT_FALSE(control.has_deadline());
  EXPECT_FALSE(control.deadline_expired());

  control.set_timeout(std::chrono::hours(1));
  EXPECT_TRUE(control.has_deadline());
  EXPECT_FALSE(control.deadline_expired());

  control.set_deadline(RunControl::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(control.deadline_expired());

  control.clear_deadline();
  EXPECT_FALSE(control.has_deadline());
  EXPECT_FALSE(control.deadline_expired());
}

TEST(RunControlTest, BudgetDefaultsToUnlimited) {
  RunControl control;
  EXPECT_EQ(control.unit_budget(), RunControl::kNoBudget);
  control.set_unit_budget(7);
  EXPECT_EQ(control.unit_budget(), 7u);
  control.clear_unit_budget();
  EXPECT_EQ(control.unit_budget(), RunControl::kNoBudget);
}

TEST(FaultPlanTest, BuildersAndQueries) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.describe(), "no faults");

  plan.throw_in_unit(3).stall_unit(5, std::chrono::milliseconds(20)).malformed_scenario(9);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.should_throw(3));
  EXPECT_FALSE(plan.should_throw(4));
  EXPECT_EQ(plan.stall_for(5), std::chrono::milliseconds(20));
  EXPECT_EQ(plan.stall_for(6), std::chrono::milliseconds(0));
  EXPECT_TRUE(plan.malformed(9));
  EXPECT_FALSE(plan.fail_checkpoint());
  plan.fail_at_checkpoint();
  EXPECT_TRUE(plan.fail_checkpoint());
  EXPECT_NE(plan.describe().find("throw in unit 3"), std::string::npos);

  // abort_in_unit is queried like every other hook -- but NEVER executed
  // in-process here: std::abort() is real (the supervisor tests run it in
  // child processes).
  EXPECT_FALSE(plan.should_abort(11));
  plan.abort_in_unit(11);
  EXPECT_TRUE(plan.should_abort(11));
  EXPECT_FALSE(plan.should_abort(12));
  EXPECT_NE(plan.describe().find("abort in unit 11"), std::string::npos);

  FaultPlan abort_only;
  abort_only.abort_in_unit(0);
  EXPECT_FALSE(abort_only.empty());
}

TEST(FaultPlanTest, FromEnvParsesAndRejects) {
  ::setenv("PR_FAULT_THROW_UNIT", "3,17", 1);
  ::setenv("PR_FAULT_STALL_UNIT", "4:25,9:1", 1);
  ::setenv("PR_FAULT_FAIL_CHECKPOINT", "1", 1);
  ::setenv("PR_FAULT_MALFORMED_UNIT", "6", 1);
  ::setenv("PR_FAULT_ABORT_UNIT", "12,40", 1);
  FaultPlan plan = FaultPlan::from_env();
  EXPECT_TRUE(plan.should_throw(3));
  EXPECT_TRUE(plan.should_throw(17));
  EXPECT_EQ(plan.stall_for(4), std::chrono::milliseconds(25));
  EXPECT_EQ(plan.stall_for(9), std::chrono::milliseconds(1));
  EXPECT_TRUE(plan.fail_checkpoint());
  EXPECT_TRUE(plan.malformed(6));
  EXPECT_TRUE(plan.should_abort(12));
  EXPECT_TRUE(plan.should_abort(40));
  EXPECT_FALSE(plan.should_abort(13));

  // A typo'd plan must throw, not silently inject nothing.
  ::setenv("PR_FAULT_THROW_UNIT", "3x", 1);
  EXPECT_THROW((void)FaultPlan::from_env(), std::invalid_argument);
  ::setenv("PR_FAULT_THROW_UNIT", "3", 1);
  ::setenv("PR_FAULT_STALL_UNIT", "noms", 1);
  EXPECT_THROW((void)FaultPlan::from_env(), std::invalid_argument);
  ::setenv("PR_FAULT_STALL_UNIT", "4:25", 1);
  ::setenv("PR_FAULT_FAIL_CHECKPOINT", "maybe", 1);
  EXPECT_THROW((void)FaultPlan::from_env(), std::invalid_argument);
  ::setenv("PR_FAULT_FAIL_CHECKPOINT", "0", 1);

  // Every parse error names the offending variable AND its full value, so a
  // CI failure is diagnosable from the message alone.
  ::setenv("PR_FAULT_THROW_UNIT", "3,oops", 1);
  try {
    (void)FaultPlan::from_env();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("PR_FAULT_THROW_UNIT"), std::string::npos) << what;
    EXPECT_NE(what.find("3,oops"), std::string::npos) << what;
  }

  // Duplicate units in one variable are an editing mistake, not a request:
  // sets would silently collapse them and the stall map would keep only the
  // last delay, so from_env rejects them outright.
  ::setenv("PR_FAULT_THROW_UNIT", "3,7,3", 1);
  try {
    (void)FaultPlan::from_env();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("PR_FAULT_THROW_UNIT"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate unit 3"), std::string::npos) << what;
    EXPECT_NE(what.find("3,7,3"), std::string::npos) << what;
  }
  ::setenv("PR_FAULT_THROW_UNIT", "3", 1);
  ::setenv("PR_FAULT_STALL_UNIT", "4:25,4:50", 1);
  EXPECT_THROW((void)FaultPlan::from_env(), std::invalid_argument);
  ::setenv("PR_FAULT_STALL_UNIT", "4:25", 1);
  ::setenv("PR_FAULT_MALFORMED_UNIT", "6,6", 1);
  EXPECT_THROW((void)FaultPlan::from_env(), std::invalid_argument);
  ::setenv("PR_FAULT_MALFORMED_UNIT", "6", 1);

  // PR_FAULT_ABORT_UNIT gets the same strictness: malformed values and
  // duplicates are configuration errors, never a silent no-op (an abort plan
  // that quietly parses to nothing would make a crash-resume test vacuous).
  ::setenv("PR_FAULT_ABORT_UNIT", "12x", 1);
  try {
    (void)FaultPlan::from_env();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("PR_FAULT_ABORT_UNIT"), std::string::npos) << what;
    EXPECT_NE(what.find("12x"), std::string::npos) << what;
  }
  ::setenv("PR_FAULT_ABORT_UNIT", "12,12", 1);
  EXPECT_THROW((void)FaultPlan::from_env(), std::invalid_argument);

  ::unsetenv("PR_FAULT_THROW_UNIT");
  ::unsetenv("PR_FAULT_STALL_UNIT");
  ::unsetenv("PR_FAULT_FAIL_CHECKPOINT");
  ::unsetenv("PR_FAULT_MALFORMED_UNIT");
  ::unsetenv("PR_FAULT_ABORT_UNIT");
  EXPECT_TRUE(FaultPlan::from_env().empty());
}

TEST(StopReasonTest, NamesAreStable) {
  EXPECT_STREQ(sim::to_string(StopReason::kCompleted), "completed");
  EXPECT_STREQ(sim::to_string(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(sim::to_string(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(sim::to_string(StopReason::kBudget), "budget");
  EXPECT_STREQ(sim::to_string(StopReason::kUnitError), "unit-error");
}

// ---------------------------------------------------------------------------
// Budget truncation: the only deterministic-by-construction stop, so the
// prefix must be EXACT at every thread count.

TEST(ControlledSweepTest, BudgetTruncatesToTheExactPrefix) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SweepExecutor executor(threads);
    RunControl control;
    control.set_unit_budget(13);

    std::atomic<std::size_t> ran{0};
    ReduceLog log;
    const SweepOutcome outcome = executor.run_ordered(
        100,
        [&](std::size_t, WorkerContext&) {
          ran.fetch_add(1, std::memory_order_relaxed);
        },
        log.fn(), control, /*seed=*/1);

    EXPECT_EQ(outcome.stop_reason, StopReason::kBudget) << threads;
    EXPECT_EQ(outcome.completed_units, 13u) << threads;
    EXPECT_FALSE(outcome.complete());
    EXPECT_TRUE(outcome.errors.empty());
    EXPECT_EQ(ran.load(), 13u) << threads;
    EXPECT_TRUE(log.is_prefix(13)) << threads;
  }
}

TEST(ControlledSweepTest, BudgetOnPlainRunIsExactToo) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SweepExecutor executor(threads);
    RunControl control;
    control.set_unit_budget(29);
    std::vector<std::atomic<int>> hits(100);
    const SweepOutcome outcome = executor.run(
        100,
        [&](std::size_t unit, WorkerContext&) {
          hits[unit].fetch_add(1, std::memory_order_relaxed);
        },
        control);
    EXPECT_EQ(outcome.stop_reason, StopReason::kBudget);
    EXPECT_EQ(outcome.completed_units, 29u);
    for (std::size_t u = 0; u < 100; ++u) {
      EXPECT_EQ(hits[u].load(), u < 29 ? 1 : 0) << "unit " << u;
    }
  }
}

TEST(ControlledSweepTest, BudgetLargerThanUnitCountCompletes) {
  SweepExecutor executor(4);
  RunControl control;
  control.set_unit_budget(1000);
  ReduceLog log;
  const SweepOutcome outcome = executor.run_ordered(
      10, [](std::size_t, WorkerContext&) {}, log.fn(), control);
  EXPECT_EQ(outcome.stop_reason, StopReason::kCompleted);
  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.completed_units, 10u);
  EXPECT_TRUE(log.is_prefix(10));
}

TEST(ControlledSweepTest, ZeroBudgetRunsNothing) {
  SweepExecutor executor(2);
  RunControl control;
  control.set_unit_budget(0);
  std::atomic<std::size_t> ran{0};
  const SweepOutcome outcome = executor.run(
      50,
      [&](std::size_t, WorkerContext&) {
        ran.fetch_add(1, std::memory_order_relaxed);
      },
      control);
  EXPECT_EQ(outcome.stop_reason, StopReason::kBudget);
  EXPECT_EQ(outcome.completed_units, 0u);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ControlledSweepTest, ZeroUnitsIsCompleted) {
  SweepExecutor executor(2);
  RunControl control;
  const SweepOutcome outcome =
      executor.run(0, [](std::size_t, WorkerContext&) {}, control);
  EXPECT_EQ(outcome.stop_reason, StopReason::kCompleted);
  EXPECT_EQ(outcome.completed_units, 0u);
}

// ---------------------------------------------------------------------------
// Deadline

TEST(ControlledSweepTest, AlreadyExpiredDeadlineRunsNothing) {
  SweepExecutor executor(4);
  RunControl control;
  control.set_deadline(RunControl::Clock::now() - std::chrono::seconds(1));
  std::atomic<std::size_t> ran{0};
  ReduceLog log;
  const SweepOutcome outcome = executor.run_ordered(
      1000,
      [&](std::size_t, WorkerContext&) {
        ran.fetch_add(1, std::memory_order_relaxed);
      },
      log.fn(), control);
  EXPECT_EQ(outcome.stop_reason, StopReason::kDeadline);
  EXPECT_EQ(outcome.completed_units, 0u);
  EXPECT_EQ(ran.load(), 0u);
  EXPECT_TRUE(log.units.empty());
}

TEST(ControlledSweepTest, MidSweepDeadlineDrainsToAPrefix) {
  // Sleepy units + a deadline that trips partway: the sweep must stop with
  // SOME canonical prefix (where exactly depends on timing), never a hole.
  SweepExecutor executor(4);
  RunControl control;
  control.set_timeout(std::chrono::milliseconds(50));
  ReduceLog log;
  const SweepOutcome outcome = executor.run_ordered(
      10000,
      [&](std::size_t, WorkerContext&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      log.fn(), control);
  EXPECT_EQ(outcome.stop_reason, StopReason::kDeadline);
  EXPECT_LT(outcome.completed_units, 10000u);
  EXPECT_TRUE(log.is_prefix(outcome.completed_units));
}

// ---------------------------------------------------------------------------
// Cancellation

TEST(ControlledSweepTest, CancelFromInsideAUnitDrainsToAPrefix) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SweepExecutor executor(threads);
    RunControl control;
    ReduceLog log;
    const SweepOutcome outcome = executor.run_ordered(
        10000,
        [&](std::size_t unit, WorkerContext&) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          if (unit == 20) control.cancel();
        },
        log.fn(), control);
    EXPECT_EQ(outcome.stop_reason, StopReason::kCancelled) << threads;
    // Unit 20 ran (it did the cancelling), so the prefix covers it; workers
    // observe the flag at the next claim, so the prefix stays small.
    EXPECT_GE(outcome.completed_units, 21u) << threads;
    EXPECT_LT(outcome.completed_units, 10000u) << threads;
    EXPECT_TRUE(log.is_prefix(outcome.completed_units)) << threads;
  }
}

TEST(ControlledSweepTest, CancelFromAnotherThreadStopsTheSweep) {
  SweepExecutor executor(2);
  RunControl control;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    control.cancel();
  });
  ReduceLog log;
  const SweepOutcome outcome = executor.run_ordered(
      1000000,
      [&](std::size_t, WorkerContext&) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      },
      log.fn(), control);
  canceller.join();
  EXPECT_EQ(outcome.stop_reason, StopReason::kCancelled);
  EXPECT_LT(outcome.completed_units, 1000000u);
  EXPECT_TRUE(log.is_prefix(outcome.completed_units));
}

TEST(ControlledSweepTest, CancelledControlIsReusableAfterReset) {
  SweepExecutor executor(2);
  RunControl control;
  control.cancel();
  const SweepOutcome stopped =
      executor.run(10, [](std::size_t, WorkerContext&) {}, control);
  EXPECT_EQ(stopped.stop_reason, StopReason::kCancelled);
  EXPECT_EQ(stopped.completed_units, 0u);

  control.reset_cancel();
  const SweepOutcome done =
      executor.run(10, [](std::size_t, WorkerContext&) {}, control);
  EXPECT_EQ(done.stop_reason, StopReason::kCompleted);
  EXPECT_EQ(done.completed_units, 10u);
}

// ---------------------------------------------------------------------------
// Error containment

TEST(ControlledSweepTest, StopPolicyTruncatesAtTheFailingUnit) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SweepExecutor executor(threads);
    RunControl control;  // kStop is the default policy
    FaultPlan faults;
    faults.throw_in_unit(23);
    control.set_fault_plan(&faults);

    ReduceLog log;
    const SweepOutcome outcome = executor.run_ordered(
        200, [](std::size_t, WorkerContext&) {}, log.fn(), control, /*seed=*/7);

    EXPECT_EQ(outcome.stop_reason, StopReason::kUnitError) << threads;
    EXPECT_EQ(outcome.completed_units, 23u) << threads;
    EXPECT_TRUE(log.is_prefix(23)) << threads;
    ASSERT_FALSE(outcome.errors.empty());
    const sim::UnitError* first = outcome.first_error();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->unit, 23u);
    EXPECT_NE(first->what.find("injected fault in unit 23"), std::string::npos);
    EXPECT_GE(outcome.error_count, 1u);

    // The executor survives and the control can drive a clean follow-up run.
    control.set_fault_plan(nullptr);
    const SweepOutcome clean = executor.run_ordered(
        5, [](std::size_t, WorkerContext&) {}, log.fn(), control);
    EXPECT_EQ(clean.stop_reason, StopReason::kCompleted);
  }
}

TEST(ControlledSweepTest, ContinuePolicySkipsFailedUnitsAndFinishes) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SweepExecutor executor(threads);
    RunControl control;
    control.set_error_policy(UnitErrorPolicy::kContinue);
    FaultPlan faults;
    faults.throw_in_unit(5).throw_in_unit(40).throw_in_unit(41);
    control.set_fault_plan(&faults);

    std::atomic<std::size_t> ran{0};
    ReduceLog log;
    const SweepOutcome outcome = executor.run_ordered(
        60,
        [&](std::size_t, WorkerContext&) {
          ran.fetch_add(1, std::memory_order_relaxed);
        },
        log.fn(), control);

    // kContinue reaches the end: the sweep is "completed with errors".
    EXPECT_EQ(outcome.stop_reason, StopReason::kCompleted) << threads;
    EXPECT_EQ(outcome.completed_units, 60u) << threads;
    EXPECT_EQ(outcome.error_count, 3u) << threads;
    ASSERT_EQ(outcome.errors.size(), 3u);
    EXPECT_EQ(outcome.errors[0].unit, 5u);
    EXPECT_EQ(outcome.errors[1].unit, 40u);
    EXPECT_EQ(outcome.errors[2].unit, 41u);
    // Failed units never reach the reduce hook; everyone else does, in order.
    ASSERT_EQ(log.units.size(), 57u);
    std::size_t expect = 0;
    for (const std::size_t unit : log.units) {
      while (expect == 5 || expect == 40 || expect == 41) ++expect;
      EXPECT_EQ(unit, expect);
      ++expect;
    }
    // 57 successful + 3 faulted claims were all attempted.
    EXPECT_EQ(ran.load(), 57u) << threads;  // fn not reached for faulted units
  }
}

TEST(ControlledSweepTest, PlainRunContainsErrorsWithoutThrowing) {
  SweepExecutor executor(4);
  RunControl control;
  const SweepOutcome outcome = executor.run(
      100,
      [](std::size_t unit, WorkerContext&) {
        if (unit == 31) throw std::runtime_error("boom 31");
      },
      control);
  EXPECT_EQ(outcome.stop_reason, StopReason::kUnitError);
  EXPECT_EQ(outcome.completed_units, 31u);
  ASSERT_NE(outcome.first_error(), nullptr);
  EXPECT_EQ(outcome.first_error()->unit, 31u);
  EXPECT_EQ(outcome.first_error()->what, "boom 31");
}

TEST(ControlledSweepTest, ReduceFailureTruncatesUnderEveryPolicy) {
  SweepExecutor executor(2);
  RunControl control;
  control.set_error_policy(UnitErrorPolicy::kContinue);
  std::vector<std::size_t> reduced;
  const SweepOutcome outcome = executor.run_ordered(
      50, [](std::size_t, WorkerContext&) {},
      [&](std::size_t unit) {
        if (unit == 12) throw std::runtime_error("reduce died");
        reduced.push_back(unit);
      },
      control);
  EXPECT_EQ(outcome.stop_reason, StopReason::kUnitError);
  EXPECT_EQ(outcome.completed_units, 12u);
  ASSERT_EQ(reduced.size(), 12u);
  ASSERT_NE(outcome.first_error(), nullptr);
  EXPECT_EQ(outcome.first_error()->unit, 12u);
  EXPECT_EQ(outcome.first_error()->what, "reduce died");
}

// ---------------------------------------------------------------------------
// Timing faults: stalls reshuffle completion order, never results.

TEST(ControlledSweepTest, StallsDoNotChangeResults) {
  std::vector<double> baseline;
  for (const bool stall : {false, true}) {
    SweepExecutor executor(4);
    RunControl control;
    FaultPlan faults;
    if (stall) {
      faults.stall_unit(0, std::chrono::milliseconds(30))
          .stall_unit(7, std::chrono::milliseconds(10));
      control.set_fault_plan(&faults);
    }
    std::vector<double> draws(40);
    std::vector<double> stream;
    const SweepOutcome outcome = executor.run_ordered(
        40,
        [&](std::size_t unit, WorkerContext& ctx) {
          draws[unit] = ctx.rng().unit();
        },
        [&](std::size_t unit) { stream.push_back(draws[unit]); }, control,
        /*seed=*/99);
    EXPECT_EQ(outcome.stop_reason, StopReason::kCompleted);
    if (baseline.empty()) {
      baseline = stream;
    } else {
      EXPECT_EQ(stream, baseline);  // bit-identical despite the stalls
    }
  }
}

// ---------------------------------------------------------------------------
// Legacy entry points keep throwing, now with context.

TEST(ControlledSweepTest, LegacyRethrowNamesLowestUnitDeterministically) {
  // Two failing units: whatever the thread count claims first, the rethrown
  // error must name the LOWEST failing unit.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SweepExecutor executor(threads);
    try {
      executor.run(100, [](std::size_t unit, WorkerContext&) {
        if (unit == 11 || unit == 77) {
          throw std::runtime_error("fail " + std::to_string(unit));
        }
      });
      FAIL() << "expected SweepUnitError";
    } catch (const sim::SweepUnitError& e) {
      EXPECT_EQ(e.unit(), 11u) << threads;
    }
  }
}

}  // namespace
}  // namespace pr
