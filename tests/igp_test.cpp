// Tests for the event-driven link-state IGP convergence model.
#include "route/igp.hpp"

#include <gtest/gtest.h>

#include "core/pr_protocol.hpp"
#include "embed/embedder.hpp"
#include "graph/generators.hpp"
#include "net/event_sim.hpp"
#include "topo/topologies.hpp"

namespace pr::route {
namespace {

using graph::EdgeId;
using graph::NodeId;

struct IgpFixture {
  explicit IgpFixture(graph::Graph graph, LinkStateIgp::Timings timings = {})
      : g(std::move(graph)), network(g), igp(sim, network, timings) {}

  void fail(EdgeId e) {
    network.fail_link(e);
    igp.on_link_failure(e);
  }

  graph::Graph g;
  net::Network network;
  net::Simulator sim;
  LinkStateIgp igp;
};

TEST(LinkStateIgpTest, StartsConvergedOnPristineTopology) {
  IgpFixture fx(topo::abilene());
  EXPECT_TRUE(fx.igp.fully_converged());
  EXPECT_EQ(fx.igp.lsa_messages(), 0U);
  // All-pairs delivery at optimal cost before any failure.
  const RoutingDb truth(fx.g);
  for (NodeId s = 0; s < fx.g.node_count(); ++s) {
    for (NodeId t = 0; t < fx.g.node_count(); ++t) {
      if (s == t) continue;
      const auto trace = net::route_packet(fx.network, fx.igp.protocol(), s, t);
      ASSERT_TRUE(trace.delivered());
      EXPECT_DOUBLE_EQ(trace.cost, truth.cost(s, t));
    }
  }
}

TEST(LinkStateIgpTest, FloodingReachesEveryRouter) {
  IgpFixture fx(topo::geant());
  fx.sim.at(0.0, [&] { fx.fail(0); });
  fx.sim.run();
  EXPECT_TRUE(fx.igp.fully_converged());
  EXPECT_GT(fx.igp.lsa_messages(), 0U);
  // Each router floods a given LSA at most once over each incident live link.
  EXPECT_LE(fx.igp.lsa_messages(), 2 * fx.g.edge_count());
  EXPECT_GT(fx.igp.spf_runs(), 0U);
  EXPECT_LE(fx.igp.spf_runs(), fx.g.node_count());
}

TEST(LinkStateIgpTest, ConvergenceTimeMatchesTimings) {
  LinkStateIgp::Timings t;
  t.detection_delay = 0.05;
  t.lsa_processing = 0.001;
  t.spf_delay = 0.1;
  IgpFixture fx(topo::abilene(), t);
  fx.sim.at(0.0, [&] { fx.fail(0); });
  fx.sim.run();
  // Lower bound: detection + spf for the adjacent routers; upper bound:
  // detection + (diameter hops) * (1ms link delay + processing) + spf.
  EXPECT_GE(fx.igp.last_table_update(), 0.05 + 0.1);
  EXPECT_LE(fx.igp.last_table_update(),
            0.05 + 10 * (0.001 + 0.001) + 0.1 + 1e-9);
}

TEST(LinkStateIgpTest, PreConvergencePacketsDropPostConvergenceDeliver) {
  IgpFixture fx(topo::abilene());
  const auto denver = *fx.g.find_node("Denver");
  const auto kc = *fx.g.find_node("KansasCity");
  const auto e = *fx.g.find_edge(denver, kc);
  fx.fail(e);  // immediately: detection/flooding unfold when the sim runs

  // Before the simulator runs, Denver's table is stale: drop at the failure.
  const auto pre = net::route_packet(fx.network, fx.igp.protocol(), denver, kc);
  EXPECT_FALSE(pre.delivered());
  EXPECT_EQ(pre.drop_reason, net::DropReason::kPolicy);

  fx.sim.run();
  ASSERT_TRUE(fx.igp.fully_converged());
  const RoutingDb truth(fx.g, &fx.network.failed_links());
  for (NodeId s = 0; s < fx.g.node_count(); ++s) {
    for (NodeId t2 = 0; t2 < fx.g.node_count(); ++t2) {
      if (s == t2) continue;
      const auto trace = net::route_packet(fx.network, fx.igp.protocol(), s, t2);
      ASSERT_TRUE(trace.delivered());
      EXPECT_DOUBLE_EQ(trace.cost, truth.cost(s, t2));
    }
  }
}

TEST(LinkStateIgpTest, SpfThrottleCoalescesNearbyFailures) {
  IgpFixture fx(topo::geant());
  // Two failures 1 ms apart: every router learns both within its spf_delay
  // window, so it recomputes once, not twice.
  fx.sim.at(0.0, [&] { fx.fail(0); });
  fx.sim.at(0.001, [&] { fx.fail(5); });
  fx.sim.run();
  EXPECT_TRUE(fx.igp.fully_converged());
  EXPECT_LE(fx.igp.spf_runs(), fx.g.node_count());
}

TEST(LinkStateIgpTest, WellSeparatedFailuresRecomputeTwice) {
  IgpFixture fx(topo::abilene());
  fx.sim.at(0.0, [&] { fx.fail(0); });
  fx.sim.at(10.0, [&] { fx.fail(5); });
  fx.sim.run();
  EXPECT_TRUE(fx.igp.fully_converged());
  EXPECT_GT(fx.igp.spf_runs(), fx.g.node_count());
  EXPECT_LE(fx.igp.spf_runs(), 2 * fx.g.node_count());
}

TEST(LinkStateIgpTest, ConvergedPerRouterProgresses) {
  LinkStateIgp::Timings t;
  t.detection_delay = 0.05;
  IgpFixture fx(topo::abilene(), t);
  const auto seattle = *fx.g.find_node("Seattle");
  const auto washington = *fx.g.find_node("Washington");
  const auto e = *fx.g.find_edge(seattle, *fx.g.find_node("Sunnyvale"));
  fx.sim.at(0.0, [&] { fx.fail(e); });
  // Just after detection + spf at the near end, Seattle has converged while
  // the far coast may still be waiting on flooding + its own SPF timer.
  fx.sim.run(0.152);
  EXPECT_TRUE(fx.igp.converged(seattle));
  EXPECT_FALSE(fx.igp.converged(washington));
  fx.sim.run();
  EXPECT_TRUE(fx.igp.converged(washington));
}

TEST(LinkStateIgpTest, LsaFloodAvoidsFailedLinks) {
  // Fail a bridge-ish pair so flooding must route around: ring of 6, fail one
  // link; the LSA still reaches the node across the failed link the long way.
  IgpFixture fx(graph::ring(6));
  fx.sim.at(0.0, [&] { fx.fail(0); });  // edge 0 connects nodes 0 and 1
  fx.sim.run();
  EXPECT_TRUE(fx.igp.fully_converged());
}

TEST(LinkStateIgpTest, TransientMicroLoopFormsAndResolves) {
  // The classic convergence pathology the flooding model must reproduce:
  // after A updates but before B does, A forwards via B while B still
  // forwards via A.  Weighted 4-ring A-B-C-D (A-D=1, A-B=1, B-C=1, C-D=4),
  // destination D, fail A-D:
  //   A detects at 50 ms, installs A->B->C->D at 150 ms;
  //   B hears the LSA ~52 ms, installs B->C->D at ~152 ms.
  // A packet leaving A in the (150, 152) ms window ping-pongs A-B until B's
  // FIB update lands, then exits -- delivered, but with extra hops.
  graph::Graph g;
  const auto a = g.add_node("A");
  const auto b = g.add_node("B");
  const auto c = g.add_node("C");
  const auto d = g.add_node("D");
  g.add_edge(a, d, 1);
  g.add_edge(a, b, 1);
  g.add_edge(b, c, 1);
  g.add_edge(c, d, 4);

  net::Network network(g);
  net::Simulator sim;
  LinkStateIgp igp(sim, network);

  sim.at(0.0, [&] {
    network.fail_link(*g.find_edge(a, d));
    igp.on_link_failure(*g.find_edge(a, d));
  });

  bool checked = false;
  net::launch_packet(sim, network, igp.protocol(), a, d, /*start=*/0.1505,
                     [&](const net::PathTrace& trace) {
                       checked = true;
                       ASSERT_TRUE(trace.delivered());
                       // Converged path is A>B>C>D (3 hops); the micro-loop
                       // added at least one A-B round trip.
                       EXPECT_GT(trace.hops, 3U);
                       ASSERT_GE(trace.nodes.size(), 4U);
                       EXPECT_EQ(trace.nodes[0], a);
                       EXPECT_EQ(trace.nodes[1], b);
                       EXPECT_EQ(trace.nodes[2], a) << "expected the B->A bounce";
                     });
  sim.run();
  EXPECT_TRUE(checked);

  // Same scenario under Packet Re-cycling: no window, no loop, immediate
  // repair at the shortest surviving cost.
  const auto emb = embed::embed(g);
  const RoutingDb routes(g);
  const core::CycleFollowingTable cycles(emb.rotation);
  core::PacketRecycling pr(routes, cycles);
  const auto trace = net::route_packet(network, pr, a, d);
  ASSERT_TRUE(trace.delivered());
  EXPECT_EQ(trace.hops, 3U);
}

TEST(LinkStateIgpTest, PartitionedRoutersCannotConverge) {
  // Cut both links of node 0 (ring of 3 leaves node 0 isolated): it can
  // never learn about the far failure it cannot see.
  IgpFixture fx(graph::ring(4));
  const auto e01 = *fx.g.find_edge(0, 1);
  const auto e03 = *fx.g.find_edge(0, 3);
  const auto e12 = *fx.g.find_edge(1, 2);
  fx.sim.at(0.0, [&] {
    fx.fail(e01);
    fx.fail(e03);
  });
  fx.sim.at(1.0, [&] { fx.fail(e12); });
  fx.sim.run();
  EXPECT_FALSE(fx.igp.converged(0)) << "isolated router cannot learn remote LSAs";
  EXPECT_TRUE(fx.igp.converged(2));
}

}  // namespace
}  // namespace pr::route
