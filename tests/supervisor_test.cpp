// End-to-end crash-safety of the tool pair tools/storm_sweep.cpp +
// tools/sweep_supervisor.cpp, exercised as real processes (ctest runs from
// the build directory, so the binaries are siblings of this test; override
// with $PR_TOOL_DIR).  The contract under test is the paper's crash-only
// story applied to the analysis pipeline: SIGKILL a sweep mid-run at any
// thread count, resume from the durable store, and the final checkpoint --
// bytes AND digest -- is identical to an uninterrupted run's; a supervised
// child that keeps aborting (PR_FAULT_ABORT_UNIT) or wedging (stall + wedge
// timeout) still converges to that same state; SIGTERM drains gracefully to
// the distinct exit status 75 end to end.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

/// The directory holding storm_sweep / sweep_supervisor: the build dir ctest
/// runs from, unless $PR_TOOL_DIR points elsewhere.
std::string tool_path(const char* name) {
  const char* dir = std::getenv("PR_TOOL_DIR");
  return std::string(dir != nullptr ? dir : ".") + "/" + name;
}

struct TempDir {
  fs::path path;

  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("pr_supervisor_test_") + info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }

  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

using EnvList = std::vector<std::pair<std::string, std::string>>;

/// fork/exec with stdout+stderr redirected to `log_path` and `env` applied in
/// the child only -- fault-injection variables must never leak into this test
/// process or its siblings.
pid_t spawn_tool(const std::vector<std::string>& command,
                 const std::string& log_path, const EnvList& env) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int fd = ::open(log_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      ::close(fd);
    }
    for (const auto& [key, value] : env) ::setenv(key.c_str(), value.c_str(), 1);
    std::vector<char*> argv;
    argv.reserve(command.size() + 1);
    for (const std::string& arg : command) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  return pid;
}

int wait_status(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

int run_tool(const std::vector<std::string>& command, const std::string& log_path,
             const EnvList& env = {}) {
  return wait_status(spawn_tool(command, log_path, env));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// The last "<key><value>" token in `text` (e.g. key "state_digest=");
/// empty when absent.
std::string last_value(const std::string& text, const std::string& key) {
  const std::size_t pos = text.rfind(key);
  if (pos == std::string::npos) return {};
  std::size_t end = pos + key.size();
  while (end < text.size() && !std::isspace(static_cast<unsigned char>(text[end]))) {
    ++end;
  }
  return text.substr(pos + key.size(), end - pos - key.size());
}

std::size_t generation_count(const fs::path& store) {
  std::size_t count = 0;
  std::error_code ec;
  fs::directory_iterator it(store, ec);
  if (ec) return 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0 && name.size() > 12 &&
        name.compare(name.size() - 7, 7, ".prckpt") == 0) {
      ++count;
    }
  }
  return count;
}

/// Blocks until the store holds >= `want` generation files (the out-of-process
/// progress signal) or the deadline passes.
bool wait_for_generations(const fs::path& store, std::size_t want,
                          std::chrono::seconds deadline = std::chrono::seconds(60)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (generation_count(store) >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

/// Bytes of the highest-numbered generation file, nullopt when none.
std::optional<std::string> newest_generation_bytes(const fs::path& store) {
  std::uint64_t newest = 0;
  fs::path newest_path;
  std::error_code ec;
  fs::directory_iterator it(store, ec);
  if (ec) return std::nullopt;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) != 0 || name.size() <= 12 ||
        name.compare(name.size() - 7, 7, ".prckpt") != 0) {
      continue;
    }
    const std::uint64_t gen = std::strtoull(name.substr(5, name.size() - 12).c_str(),
                                            nullptr, 10);
    if (gen >= newest) {
      newest = gen;
      newest_path = entry.path();
    }
  }
  if (newest == 0) return std::nullopt;
  return read_file(newest_path.string());
}

/// Common storm_sweep experiment flags (everything but threads/store knobs):
/// identical across the reference and every interrupted incarnation, which is
/// what the bit-identity claims are ABOUT.
std::vector<std::string> sweep_command(std::size_t scenarios) {
  return {tool_path("storm_sweep"),
          "--topology", "abilene",
          "--scenarios", std::to_string(scenarios),
          "--seed",      "99",
          "--top-k",     "5"};
}

/// Runs the uninterrupted reference sweep into its own store; returns the
/// printed state digest and the final generation's bytes.
std::pair<std::string, std::string> reference_run(const TempDir& dir,
                                                  std::size_t scenarios) {
  const std::string store = dir.file("reference_store");
  auto command = sweep_command(scenarios);
  command.insert(command.end(), {"--threads", "2", "--ckpt-dir", store});
  const int status = run_tool(command, dir.file("reference.log"));
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << read_file(dir.file("reference.log"));
  const std::string digest =
      last_value(read_file(dir.file("reference.log")), "state_digest=");
  EXPECT_FALSE(digest.empty());
  EXPECT_NE(digest, "0");
  const auto bytes = newest_generation_bytes(store);
  EXPECT_TRUE(bytes.has_value());
  return {digest, bytes.value_or("")};
}

TEST(SupervisorTest, SigkillMidSweepThenResumeIsBitIdentical) {
  TempDir dir;
  constexpr std::size_t kScenarios = 1200;
  const auto [ref_digest, ref_bytes] = reference_run(dir, kScenarios);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    const std::string store = dir.file("store_t" + std::to_string(threads));
    auto command = sweep_command(kScenarios);
    command.insert(command.end(),
                   {"--threads", std::to_string(threads), "--ckpt-dir", store,
                    "--ckpt-every", "50u,10ms"});

    // A long stall at run-relative unit 600 pins the sweep mid-run so the
    // SIGKILL below is guaranteed to land before completion.
    const std::string kill_log = dir.file("kill_t" + std::to_string(threads) + ".log");
    const pid_t pid =
        spawn_tool(command, kill_log, {{"PR_FAULT_STALL_UNIT", "600:30000"}});
    ASSERT_TRUE(wait_for_generations(store, 1)) << read_file(kill_log);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    const int status = wait_status(pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    // Resume in a fresh process (no fault plan) and finish.
    auto resume = command;
    resume.emplace_back("--resume-from-latest");
    const std::string resume_log =
        dir.file("resume_t" + std::to_string(threads) + ".log");
    const int resume_status = run_tool(resume, resume_log);
    const std::string log = read_file(resume_log);
    ASSERT_TRUE(WIFEXITED(resume_status) && WEXITSTATUS(resume_status) == 0) << log;
    EXPECT_NE(log.find("resuming from generation"), std::string::npos) << log;
    EXPECT_EQ(last_value(log, "resumed="), "1") << log;
    EXPECT_EQ(last_value(log, "completed="), std::to_string(kScenarios)) << log;

    // The proof: digest AND raw final-generation bytes match the reference.
    EXPECT_EQ(last_value(log, "state_digest="), ref_digest) << log;
    const auto bytes = newest_generation_bytes(store);
    ASSERT_TRUE(bytes.has_value());
    EXPECT_EQ(*bytes, ref_bytes);
  }
}

TEST(SupervisorTest, RestartsAbortingChildUntilConvergence) {
  TempDir dir;
  constexpr std::size_t kScenarios = 1000;
  const auto [ref_digest, ref_bytes] = reference_run(dir, kScenarios);

  const std::string store = dir.file("store");
  std::vector<std::string> command = {tool_path("sweep_supervisor"),
                                      "--max-restarts", "10",
                                      "--store", store,
                                      "--"};
  auto child = sweep_command(kScenarios);
  child.insert(child.end(), {"--threads", "2", "--ckpt-dir", store,
                             "--ckpt-every", "40u"});
  command.insert(command.end(), child.begin(), child.end());

  // Every incarnation aborts 250 units past its resume point.  The 50 ms
  // stall at unit 200 holds the watermark still long enough for the
  // checkpoint monitor (10 ms poll) to persist the 200-unit prefix first, so
  // each crash-loop incarnation banks ~200 units and the sweep must converge
  // well within the restart budget.
  const std::string log_path = dir.file("supervised.log");
  const int status =
      run_tool(command, log_path,
               {{"PR_FAULT_STALL_UNIT", "200:50"}, {"PR_FAULT_ABORT_UNIT", "250"}});
  const std::string log = read_file(log_path);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << log;
  EXPECT_NE(log.find("sweep_supervisor: restart 1/10"), std::string::npos) << log;
  EXPECT_NE(log.find("child completed after"), std::string::npos) << log;

  EXPECT_EQ(last_value(log, "state_digest="), ref_digest) << log;
  const auto bytes = newest_generation_bytes(store);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, ref_bytes);
}

TEST(SupervisorTest, WedgeKillDetectsStalledChildAndResumes) {
  TempDir dir;
  constexpr std::size_t kScenarios = 600;
  const auto [ref_digest, ref_bytes] = reference_run(dir, kScenarios);

  const std::string store = dir.file("store");
  std::vector<std::string> command = {tool_path("sweep_supervisor"),
                                      "--max-restarts", "10",
                                      "--wedge-timeout-ms", "2000",
                                      "--poll-ms", "20",
                                      "--store", store,
                                      "--"};
  auto child = sweep_command(kScenarios);
  child.insert(child.end(), {"--threads", "2", "--ckpt-dir", store,
                             "--ckpt-every", "30u"});
  command.insert(command.end(), child.begin(), child.end());

  // The child wedges (60 s stall) at run-relative unit 250 every incarnation:
  // generations stop appearing, the supervisor SIGKILLs on the wedge timeout,
  // and the resume banks the ~250 units already checkpointed.  The final
  // incarnation has < 250 units left and completes.
  const std::string log_path = dir.file("supervised.log");
  const int status =
      run_tool(command, log_path, {{"PR_FAULT_STALL_UNIT", "250:60000"}});
  const std::string log = read_file(log_path);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << log;
  EXPECT_NE(log.find("wedged (no new generation in 2000 ms)"), std::string::npos)
      << log;
  EXPECT_NE(log.find("(wedge kill)"), std::string::npos) << log;
  EXPECT_NE(log.find("child completed after"), std::string::npos) << log;

  EXPECT_EQ(last_value(log, "state_digest="), ref_digest) << log;
  const auto bytes = newest_generation_bytes(store);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, ref_bytes);
}

TEST(SupervisorTest, SigtermDrainsGracefullyAndPropagates75) {
  TempDir dir;
  constexpr std::size_t kScenarios = 3000;
  const auto [ref_digest, ref_bytes] = reference_run(dir, kScenarios);

  const std::string store = dir.file("store");
  std::vector<std::string> command = {tool_path("sweep_supervisor"),
                                      "--max-restarts", "3",
                                      "--store", store,
                                      "--"};
  auto child = sweep_command(kScenarios);
  child.insert(child.end(), {"--threads", "2", "--ckpt-dir", store,
                             "--ckpt-every", "50u"});
  command.insert(command.end(), child.begin(), child.end());

  // A 3 s stall at unit 500 keeps the child mid-run while the SIGTERM lands;
  // the drain then waits out the stalled unit, persists the final prefix,
  // and exits 75 -- which the supervisor forwards and then propagates.
  const std::string log_path = dir.file("supervised.log");
  const pid_t pid =
      spawn_tool(command, log_path, {{"PR_FAULT_STALL_UNIT", "500:3000"}});
  ASSERT_TRUE(wait_for_generations(store, 1)) << read_file(log_path);
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  const int status = wait_status(pid);
  const std::string log = read_file(log_path);
  ASSERT_TRUE(WIFEXITED(status)) << log;
  EXPECT_EQ(WEXITSTATUS(status), 75) << log;
  EXPECT_NE(log.find("interrupted by signal 15"), std::string::npos) << log;
  EXPECT_NE(log.find("child interrupted gracefully, state saved"),
            std::string::npos)
      << log;
  EXPECT_NE(last_value(log, "final_generation="), "0") << log;

  // The saved state resumes -- in a fresh, unsignalled, fault-free process --
  // to the uninterrupted reference.
  auto resume = sweep_command(kScenarios);
  resume.insert(resume.end(), {"--threads", "2", "--ckpt-dir", store,
                               "--resume-from-latest"});
  const std::string resume_log = dir.file("resume.log");
  const int resume_status = run_tool(resume, resume_log);
  const std::string resumed = read_file(resume_log);
  ASSERT_TRUE(WIFEXITED(resume_status) && WEXITSTATUS(resume_status) == 0)
      << resumed;
  EXPECT_EQ(last_value(resumed, "state_digest="), ref_digest) << resumed;
  const auto bytes = newest_generation_bytes(store);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, ref_bytes);
}

}  // namespace
