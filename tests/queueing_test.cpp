// Tests for the interface queueing model and its flight-engine integration.
#include "net/queueing.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "net/event_sim.hpp"
#include "route/routing_db.hpp"
#include "route/static_spf.hpp"

namespace pr::net {
namespace {

QueueModel::Config small_link() {
  QueueModel::Config cfg;
  cfg.link_rate_bps = 8000;  // 1 packet of 8000 bits per second
  cfg.packet_bits = 8000;
  cfg.queue_packets = 2;
  return cfg;
}

TEST(QueueModel, Validation) {
  const auto g = graph::ring(3);
  const Network net(g);
  QueueModel::Config bad = small_link();
  bad.link_rate_bps = 0;
  EXPECT_THROW(QueueModel(net, bad), std::invalid_argument);
  bad = small_link();
  bad.queue_packets = 0;
  EXPECT_THROW(QueueModel(net, bad), std::invalid_argument);
}

TEST(QueueModel, SerialisesBackToBackPackets) {
  const auto g = graph::ring(3);
  const Network net(g);
  QueueModel q(net, small_link());
  EXPECT_DOUBLE_EQ(q.transmission_time(), 1.0);
  const auto first = q.enqueue(0, 0.0);
  const auto second = q.enqueue(0, 0.0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(*first, 1.0);
  EXPECT_DOUBLE_EQ(*second, 2.0);  // waited behind the first
}

TEST(QueueModel, TailDropsWhenFull) {
  const auto g = graph::ring(3);
  const Network net(g);
  QueueModel q(net, small_link());  // 2-packet buffer
  EXPECT_TRUE(q.enqueue(0, 0.0).has_value());
  EXPECT_TRUE(q.enqueue(0, 0.0).has_value());
  EXPECT_FALSE(q.enqueue(0, 0.0).has_value());  // third: backlog 2 >= 2
  EXPECT_EQ(q.tail_drops(), 1U);
}

TEST(QueueModel, QueuesDrainOverTime) {
  const auto g = graph::ring(3);
  const Network net(g);
  QueueModel q(net, small_link());
  (void)q.enqueue(0, 0.0);
  (void)q.enqueue(0, 0.0);
  // After the first packet finishes (t=1), a new arrival fits again.
  EXPECT_TRUE(q.enqueue(0, 1.0).has_value());
}

TEST(QueueModel, PerInterfaceIndependence) {
  const auto g = graph::ring(3);
  const Network net(g);
  QueueModel q(net, small_link());
  (void)q.enqueue(0, 0.0);
  (void)q.enqueue(0, 0.0);
  // Another dart is unaffected.
  const auto other = q.enqueue(2, 0.0);
  ASSERT_TRUE(other.has_value());
  EXPECT_DOUBLE_EQ(*other, 1.0);
}

TEST(QueueModel, FlushResetsBacklog) {
  const auto g = graph::ring(3);
  const Network net(g);
  QueueModel q(net, small_link());
  (void)q.enqueue(0, 0.0);
  (void)q.enqueue(0, 0.0);
  q.flush();
  const auto after = q.enqueue(0, 0.0);
  ASSERT_TRUE(after.has_value());
  EXPECT_DOUBLE_EQ(*after, 1.0);
}

TEST(FlightWithQueues, CongestionDropsReported) {
  // One bottleneck link, burst of simultaneous packets: buffer + 1 pass,
  // the rest are congestion drops.
  graph::Graph g(2);
  g.add_edge(0, 1);
  Network net(g);
  net.set_processing_delay(0.0);
  net.set_link_delay(0, 0.0);
  const route::RoutingDb db(g);
  route::StaticSpf spf(db);
  QueueModel queues(net, small_link());  // 2-packet buffer

  Simulator sim;
  std::size_t delivered = 0;
  std::size_t congested = 0;
  for (int i = 0; i < 6; ++i) {
    launch_packet(sim, net, spf, 0, 1, 0.0,
                  [&](const PathTrace& trace) {
                    if (trace.delivered()) {
                      ++delivered;
                    } else if (trace.drop_reason == DropReason::kCongestion) {
                      ++congested;
                    }
                  },
                  0, &queues);
  }
  sim.run();
  EXPECT_EQ(delivered + congested, 6U);
  EXPECT_EQ(congested, 4U) << "2-deep buffer admits 2 of 6 simultaneous packets";
  EXPECT_EQ(queues.tail_drops(), 4U);
}

TEST(FlightWithQueues, DeliveryTimesIncludeSerialisation) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  Network net(g);
  net.set_processing_delay(0.0);
  net.set_link_delay(0, 0.25);
  const route::RoutingDb db(g);
  route::StaticSpf spf(db);
  QueueModel::Config cfg = small_link();
  cfg.queue_packets = 10;
  QueueModel queues(net, cfg);

  Simulator sim;
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 3; ++i) {
    launch_packet(sim, net, spf, 0, 1, 0.0,
                  [&](const PathTrace& trace) {
                    EXPECT_TRUE(trace.delivered());
                    arrivals.push_back(sim.now());
                  },
                  0, &queues);
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 3U);
  // tx 1 s each, then 0.25 s propagation: arrivals at 1.25, 2.25, 3.25.
  EXPECT_DOUBLE_EQ(arrivals[0], 1.25);
  EXPECT_DOUBLE_EQ(arrivals[1], 2.25);
  EXPECT_DOUBLE_EQ(arrivals[2], 3.25);
}

TEST(FlightWithQueues, NoQueuesMeansNoCongestion) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  Network net(g);
  const route::RoutingDb db(g);
  route::StaticSpf spf(db);
  Simulator sim;
  std::size_t delivered = 0;
  for (int i = 0; i < 100; ++i) {
    launch_packet(sim, net, spf, 0, 1, 0.0, [&](const PathTrace& trace) {
      if (trace.delivered()) ++delivered;
    });
  }
  sim.run();
  EXPECT_EQ(delivered, 100U);
}

}  // namespace
}  // namespace pr::net
