// Unit + property tests for the DMP planarity test / planar embedder.
#include "embed/planar.hpp"

#include <gtest/gtest.h>

#include "embed/faces.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace pr::embed {
namespace {

using graph::Rng;

void expect_planar_embedding(const Graph& g) {
  const auto result = planar_embedding(g);
  ASSERT_TRUE(result.planar);
  ASSERT_TRUE(result.rotation.has_value());
  const auto faces = trace_faces(*result.rotation);
  EXPECT_NO_THROW(check_face_set(*result.rotation, faces));
  EXPECT_EQ(euler_genus(g, faces), 0);
}

TEST(Planar, RingAndGridAndK4) {
  expect_planar_embedding(graph::ring(3));
  expect_planar_embedding(graph::ring(12));
  expect_planar_embedding(graph::grid(4, 5));
  expect_planar_embedding(graph::complete(4));
}

TEST(Planar, TreesAndSingleEdges) {
  Graph tree(5);
  tree.add_edge(0, 1);
  tree.add_edge(0, 2);
  tree.add_edge(1, 3);
  tree.add_edge(1, 4);
  expect_planar_embedding(tree);

  Graph single(2);
  single.add_edge(0, 1);
  expect_planar_embedding(single);
}

TEST(Planar, EmptyAndIsolated) {
  expect_planar_embedding(Graph{});
  expect_planar_embedding(Graph{3});  // three isolated nodes
}

TEST(Planar, CutVertexMerging) {
  // Two triangles sharing a vertex, plus a pendant path: multiple blocks.
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  expect_planar_embedding(g);
}

TEST(Planar, ParallelEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // 2-cycle block
  g.add_edge(1, 2);
  expect_planar_embedding(g);
}

TEST(Planar, K4PlusSubdivisionsStaysPlanar) {
  // Subdividing edges never changes planarity.
  Graph g = graph::complete(4);
  const NodeId mid = g.add_node();
  // Replace nothing; just hang a path between nodes 0 and 1 through mid,
  // creating a theta-like planar structure.
  g.add_edge(0, mid);
  g.add_edge(mid, 1);
  expect_planar_embedding(g);
}

TEST(Planar, KuratowskiGraphsRejected) {
  EXPECT_FALSE(is_planar(graph::k5()));
  EXPECT_FALSE(is_planar(graph::k33()));
  EXPECT_FALSE(is_planar(graph::petersen()));
}

TEST(Planar, K5MinusAnEdgeIsPlanar) {
  Graph g(5);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) {
      if (u == 0 && v == 1) continue;  // drop one edge of K5
      g.add_edge(u, v);
    }
  }
  expect_planar_embedding(g);
}

TEST(Planar, K33PlusPendantStillNonPlanar) {
  Graph g = graph::k33();
  const NodeId p = g.add_node();
  g.add_edge(0, p);
  EXPECT_FALSE(is_planar(g));
}

TEST(Planar, DisjointPlanarComponents) {
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // triangle
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  g.add_edge(6, 3);  // square
  expect_planar_embedding(g);
}

TEST(Planar, NonPlanarComponentDetectedAmongPlanarOnes) {
  Graph g = graph::k5();
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b);  // extra planar component
  EXPECT_FALSE(is_planar(g));
}

TEST(Planar, LargeGridFaceCount) {
  // A planar embedding of the R x C grid must have exactly the grid's cell
  // count + 1 faces (Euler).
  const Graph g = graph::grid(6, 7);
  const auto result = planar_embedding(g);
  ASSERT_TRUE(result.planar);
  const auto faces = trace_faces(*result.rotation);
  EXPECT_EQ(faces.face_count(), 5U * 6U + 1U);
}

TEST(Planar, TorusGraphIsNonPlanarButWrappedRowIsPlanar) {
  EXPECT_FALSE(is_planar(graph::torus(3, 3)));  // K5-minor-rich 4-regular graph
  // A cylinder (wrap only one dimension) stays planar: build it manually.
  const std::size_t rows = 3;
  const std::size_t cols = 4;
  Graph cyl(rows * cols);
  const auto id = [&](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + (c % cols));
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      cyl.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) cyl.add_edge(id(r, c), id(r + 1, c));
    }
  }
  expect_planar_embedding(cyl);
}

TEST(Planar, RandomOuterplanarFamilies) {
  // Rings with nested chords from node 0 (fans) are planar for any size.
  for (std::size_t n = 4; n <= 20; n += 4) {
    Graph g = graph::ring(n);
    for (NodeId v = 2; v + 1 < n; ++v) g.add_edge(0, v);
    expect_planar_embedding(g);
  }
}

TEST(Planar, DensityBoundSanity) {
  // Any simple graph with E > 3V - 6 must be reported non-planar.
  Rng rng(23);
  const Graph g = graph::erdos_renyi(10, 0.9, rng);
  if (g.edge_count() > 3 * g.node_count() - 6) {
    EXPECT_FALSE(is_planar(g));
  }
}

}  // namespace
}  // namespace pr::embed
