// Unit tests for the DSCP pool-2 header codec and overhead accounting.
#include "net/header_codec.hpp"

#include <gtest/gtest.h>

namespace pr::net {
namespace {

TEST(BitsForValue, Basics) {
  EXPECT_EQ(bits_for_value(0), 0U);
  EXPECT_EQ(bits_for_value(1), 1U);
  EXPECT_EQ(bits_for_value(2), 2U);
  EXPECT_EQ(bits_for_value(3), 2U);
  EXPECT_EQ(bits_for_value(4), 3U);
  EXPECT_EQ(bits_for_value(7), 3U);
  EXPECT_EQ(bits_for_value(8), 4U);
  EXPECT_EQ(bits_for_value(255), 8U);
  EXPECT_EQ(bits_for_value(256), 9U);
}

TEST(PrHeaderLayout, ForHopDiameter) {
  // Paper: "in the order of log2(d) bits, where d is the diameter".
  EXPECT_EQ(PrHeaderLayout::for_hop_diameter(1).dd_bits, 1U);
  EXPECT_EQ(PrHeaderLayout::for_hop_diameter(5).dd_bits, 3U);
  EXPECT_EQ(PrHeaderLayout::for_hop_diameter(7).dd_bits, 3U);
  EXPECT_EQ(PrHeaderLayout::for_hop_diameter(8).dd_bits, 4U);
}

TEST(PrHeaderLayout, Pool2Fit) {
  EXPECT_TRUE(PrHeaderLayout::for_hop_diameter(7).fits_dscp_pool2());   // 1+3 bits
  EXPECT_FALSE(PrHeaderLayout::for_hop_diameter(8).fits_dscp_pool2());  // 1+4 bits
}

TEST(PrHeaderLayout, MaxEncodableDd) {
  EXPECT_EQ(PrHeaderLayout{3}.max_encodable_dd(), 7U);
  EXPECT_EQ(PrHeaderLayout{0}.max_encodable_dd(), 0U);
}

TEST(EncodeDscp, RoundTripAllValues) {
  const PrHeaderLayout layout{3};
  for (unsigned pr = 0; pr <= 1; ++pr) {
    for (std::uint32_t dd = 0; dd <= 7; ++dd) {
      const auto code = encode_dscp(layout, pr != 0, dd);
      EXPECT_EQ(code & 0b11, 0b11) << "must be a pool-2 codepoint";
      EXPECT_LE(code, 0b111111) << "must fit the 6-bit DSCP field";
      const auto decoded = decode_dscp(layout, code);
      EXPECT_EQ(decoded.pr_bit, pr != 0);
      EXPECT_EQ(decoded.dd, dd);
    }
  }
}

TEST(EncodeDscp, RejectsOversizedDd) {
  const PrHeaderLayout layout{2};
  EXPECT_THROW((void)encode_dscp(layout, true, 4), std::invalid_argument);
}

TEST(EncodeDscp, RejectsOversizedLayout) {
  const PrHeaderLayout layout{4};  // 1 + 4 = 5 bits > 4 available
  EXPECT_THROW((void)encode_dscp(layout, true, 0), std::invalid_argument);
}

TEST(DecodeDscp, RejectsNonPool2) {
  EXPECT_THROW((void)decode_dscp(PrHeaderLayout{2}, 0b000001), std::invalid_argument);
  EXPECT_THROW((void)decode_dscp(PrHeaderLayout{2}, 0b000100), std::invalid_argument);
}

TEST(FcpHeaderBits, GrowsLinearlyWithFailures) {
  const std::size_t edges = 50;  // id field: 6 bits, count field: 6 bits
  EXPECT_EQ(fcp_header_bits(0, edges), 6U);
  EXPECT_EQ(fcp_header_bits(1, edges), 12U);
  EXPECT_EQ(fcp_header_bits(10, edges), 66U);
}

TEST(FcpHeaderBits, ExceedsPrByOrdersOfMagnitude) {
  // The qualitative claim of Section 6: even a handful of carried failures
  // needs far more header bits than PR's fixed 1 + log2(d).
  const auto pr_bits = PrHeaderLayout::for_hop_diameter(7).total_bits();
  EXPECT_GT(fcp_header_bits(4, 100), 4 * pr_bits);
}

}  // namespace
}  // namespace pr::net
