// Ablation A7: the capacity cost of rerouting.
//
// Fast reroute saves packets from the failure, but the saved packets land on
// somebody else's links.  On a 5-node ring with two constant-bit-rate flows
// and interface queues (1 ms serialization per 1 kB packet, 64-packet
// buffers), failing one flow's last link forces both flows onto the same
// bottleneck: deliveries then track the physics of the shared queue, not the
// repair scheme.  The bench separates loss by cause -- failure drops (no
// route) vs congestion drops (queue overflow) -- for PR and for a converged
// IGP taking the same post-failure path.
//
// Link speeds come from one traffic::CapacityPlan shared between the two
// models of the same links: the event-sim QueueModel is built from the
// plan's per-edge line rates, and the analytic congestion sweep prices the
// demand matrix against the same plan, so the closing cross-check compares
// queue physics with fluid-model utilization on identical links.
#include <iomanip>
#include <iostream>

#include "analysis/protocols.hpp"
#include "analysis/traffic.hpp"
#include "net/event_sim.hpp"
#include "net/queueing.hpp"
#include "topo/topologies.hpp"
#include "traffic/capacity.hpp"
#include "traffic/congestion.hpp"
#include "traffic/demand.hpp"

int main() {
  using namespace pr;

  // Ring: S1 - M1 - D - M2 - S2 - S1.  Flows S1->D and S2->D.
  graph::Graph g;
  for (const char* label : {"S1", "M1", "D", "M2", "S2"}) g.add_node(label);
  for (graph::NodeId v = 0; v < 5; ++v) g.add_edge(v, (v + 1) % 5);
  const auto s1 = *g.find_node("S1");
  const auto s2 = *g.find_node("S2");
  const auto d = *g.find_node("D");
  const auto broken = *g.find_edge(*g.find_node("M1"), d);

  const analysis::ProtocolSuite suite(g);

  // One capacity decision for both link models: 1000-pps interfaces.
  const traffic::CapacityPlan plan = traffic::CapacityPlan::uniform(g, 1000.0);
  const net::QueueModel::Config qcfg =
      plan.queue_config(/*packet_bits=*/8000, /*queue_packets=*/64);

  constexpr double kFlowPps = 600;   // per-flow rate; 2 flows on one link: 1.2x
  constexpr double kFailAt = 0.5;
  constexpr double kEnd = 2.0;

  std::cout << "5-node ring, two 600-pps flows into D, "
            << plan.capacity_pps(0) << "-pps interfaces (capacity plan -> "
            << qcfg.link_rate_bps / 1e6 << " Mbps queues), " << qcfg.queue_packets
            << "-packet buffers;\nlink M1-D fails at t=" << kFailAt << " s\n\n";
  std::cout << std::left << std::setw(22) << "protocol" << std::setw(11) << "delivered"
            << std::setw(14) << "failure-drops" << std::setw(18) << "congestion-drops"
            << "post-failure goodput\n";

  for (const auto& factory : {suite.pr(), suite.reconvergence()}) {
    net::Network network(g);
    net::Simulator sim;
    // Per-edge rates from the shared plan (uniform here, but priced through
    // the same path a heterogeneous plan would take).
    net::QueueModel queues(network, qcfg, plan.link_rates_bps(qcfg.packet_bits));

    // Reconvergence instances must be built AFTER the failure is installed to
    // model the post-convergence state; PR ignores the distinction.  To keep
    // one code path we build the protocol lazily at failure time and route
    // pre-failure packets with the pristine-equivalent instance.
    auto pre_proto = factory.make(network);
    std::unique_ptr<net::ForwardingProtocol> post_proto;
    sim.at(kFailAt, [&] {
      network.fail_link(broken);
      post_proto = factory.make(network);
    });

    std::size_t delivered = 0;
    std::size_t failure_drops = 0;
    std::size_t congestion_drops = 0;
    std::size_t post_failure_delivered = 0;

    const auto on_done = [&](const net::PathTrace& trace) {
      if (trace.delivered()) {
        ++delivered;
        if (sim.now() > kFailAt) ++post_failure_delivered;
      } else if (trace.drop_reason == net::DropReason::kCongestion) {
        ++congestion_drops;
      } else {
        ++failure_drops;
      }
    };

    // The protocol is resolved per decision via a trampoline, so packets
    // forwarded after the failure use the post-failure instance (modelling
    // instantaneous convergence: this bench isolates CAPACITY effects; the
    // convergence window itself is experiment E11).
    struct Trampoline final : net::ForwardingProtocol {
      std::unique_ptr<net::ForwardingProtocol>* pre = nullptr;
      std::unique_ptr<net::ForwardingProtocol>* post = nullptr;
      net::ForwardingDecision forward(const net::Network& n, graph::NodeId at,
                                      graph::DartId in, net::Packet& p) override {
        auto& impl = (*post != nullptr) ? *post : *pre;
        return impl->forward(n, at, in, p);
      }
      [[nodiscard]] std::string_view name() const noexcept override {
        return "trampoline";
      }
    };
    Trampoline trampoline;
    trampoline.pre = &pre_proto;
    trampoline.post = &post_proto;

    const double interval = 1.0 / kFlowPps;
    std::size_t launched = 0;
    for (double t = 0.0; t < kEnd; t += interval) {
      launched += 2;
      net::launch_packet(sim, network, trampoline, s1, d, t, on_done, 0, &queues);
      net::launch_packet(sim, network, trampoline, s2, d, t, on_done, 0, &queues);
    }
    sim.run();

    const double window = kEnd - kFailAt;
    std::cout << std::left << std::setw(22) << factory.name << std::setw(11)
              << delivered << std::setw(14) << failure_drops << std::setw(18)
              << congestion_drops << std::fixed << std::setprecision(0)
              << static_cast<double>(post_failure_delivered) / window << " pps of "
              << 2 * kFlowPps << " offered\n";
    (void)launched;
  }

  // Analytic cross-check: the same two flows as a demand matrix, the same
  // failed link as a scenario, priced against the same plan by the fluid
  // congestion model.  1200 pps into a 1000-pps interface reads as 1.2x max
  // utilization on one overloaded link -- the queue physics above is the
  // packetised version of exactly this number.
  traffic::TrafficMatrix demand(g.node_count());
  demand.set_demand(s1, d, kFlowPps);
  demand.set_demand(s2, d, kFlowPps);
  std::vector<graph::EdgeSet> scenario(1, graph::EdgeSet(g.edge_count()));
  scenario[0].insert(broken);

  const auto result = analysis::run_traffic_experiment(
      g, demand, plan, scenario, {suite.pr(), suite.reconvergence()});

  std::cout << "\nfluid-model view of the same failure (shared capacity plan):\n"
            << std::left << std::setw(22) << "protocol" << std::right << std::setw(10)
            << "max-U" << std::setw(9) << "overld" << std::setw(15) << "delivered-pps"
            << std::setw(10) << "lost-pps" << std::setw(14) << "stranded-pps\n";
  for (const auto& p : result.protocols) {
    const traffic::CongestionSummary s = p.summary();
    std::cout << std::left << std::setw(22) << p.name << std::right << std::fixed
              << std::setprecision(2) << std::setw(10) << s.worst_max_utilization
              << std::setw(9) << s.overloaded_links << std::setprecision(0)
              << std::setw(15) << s.delivered_pps << std::setw(10) << s.lost_pps
              << std::setw(14) << s.stranded_pps << "\n";
  }

  std::cout << "\nBoth schemes converge to the same bottleneck (the surviving path\n"
               "into D): the residual loss is queue physics, not protocol choice.\n"
               "PR's advantage is the failure-drop column -- zero packets lost to\n"
               "the failure itself -- at equal congestion cost.\n";
  return 0;
}
