// Ablation A1: how does PR's stretch grow with the number of simultaneous
// failures?  The paper fixes one failure count per topology (4/10/16); this
// sweep fills in the curve between and beyond those points, reporting mean
// and tail stretch per protocol per k.
#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "analysis/protocols.hpp"
#include "analysis/stretch.hpp"
#include "net/failure_model.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  using namespace pr;
  const std::size_t scenarios_per_k = 120;
  const std::uint64_t seed = 0xAB1;

  // `bench_stretch_vs_failures [threads]` (falls back to PR_SWEEP_THREADS;
  // 0 = hardware); every (topology, k) sweep shards over the same executor.
  sim::SweepExecutor executor(sim::threads_from_arg(argc, argv, 1));
  std::cout << "sweep: " << executor.thread_count() << " thread(s)\n\n";

  for (const auto& [name, g] :
       {std::pair{"abilene", topo::abilene()}, {"teleglobe", topo::teleglobe()},
        {"geant", topo::geant()}}) {
    const analysis::ProtocolSuite suite(g);
    std::cout << "== " << name << ": mean (p99) stretch over affected delivered"
              << " pairs, " << scenarios_per_k
              << " connectivity-preserving scenarios per k ==\n";
    std::cout << std::left << std::setw(6) << "k" << std::setw(26) << "Re-convergence"
              << std::setw(26) << "FCP" << std::setw(26) << "Packet Re-cycling"
              << "PR drops\n";

    const std::size_t max_k = std::min<std::size_t>(g.edge_count() / 3, 16);
    for (std::size_t k = 1; k <= max_k; k = k < 4 ? k + 1 : k * 2) {
      graph::Rng rng(seed + k);
      std::vector<graph::EdgeSet> scenarios;
      try {
        scenarios = net::sample_connected_failures(g, k, scenarios_per_k, rng, 4000);
      } catch (const std::invalid_argument&) {
        std::cout << std::left << std::setw(6) << k
                  << "(no connectivity-preserving scenarios found)\n";
        continue;
      }
      const auto result =
          analysis::run_stretch_experiment(g, scenarios, suite.paper_trio(), executor);
      std::cout << std::left << std::setw(6) << k;
      for (const auto& p : result.protocols) {
        std::vector<double> finite;
        for (double s : p.stretches) {
          if (std::isfinite(s)) finite.push_back(s);
        }
        std::sort(finite.begin(), finite.end());
        const double p99 =
            finite.empty() ? 0.0 : finite[finite.size() * 99 / 100];
        std::ostringstream cell;
        cell << std::fixed << std::setprecision(2) << p.mean_finite_stretch() << " ("
             << p99 << ")";
        std::cout << std::setw(26) << cell.str();
      }
      std::cout << result.protocols.back().dropped << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
