// Experiment E9 (Section 6 in-text claim): per-router memory.
//
// "The amount of memory that PR requires within each router (a cycle
//  following table and an additional column in the routing table) is
//  acceptable."  This bench prices PR's additions against the base routing
// table and against FCP's per-flow cached state after a failure workload.
#include <iomanip>
#include <iostream>
#include <numeric>

#include "analysis/protocols.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "net/event_sim.hpp"
#include "net/failure_model.hpp"
#include "route/fcp.hpp"
#include "route/igp.hpp"
#include "sim/forwarding_engine.hpp"
#include "topo/topologies.hpp"

int main() {
  using namespace pr;
  std::cout << "Per-router memory (bytes)\n\n";
  std::cout << std::left << std::setw(12) << "topology" << std::setw(16)
            << "routing-table" << std::setw(16) << "dd-column" << std::setw(18)
            << "cycle-table(avg)" << std::setw(18) << "cycle-table(max)"
            << "PR total overhead\n";

  const std::pair<const char*, graph::Graph> topologies[] = {
      {"figure1", topo::figure1()},
      {"abilene", topo::abilene()},
      {"teleglobe", topo::teleglobe()},
      {"geant", topo::geant()},
  };
  for (const auto& [name, g] : topologies) {
    const analysis::ProtocolSuite suite(g);
    // Base routing table: next hop per destination; DD column: one 32-bit
    // value per destination (the paper's "additional column").
    const std::size_t base = g.node_count() * sizeof(graph::DartId);
    const std::size_t dd_col = g.node_count() * sizeof(std::uint32_t);
    std::size_t cyc_total = 0;
    std::size_t cyc_max = 0;
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      const auto b = suite.cycle_table().memory_bytes_per_router(v);
      cyc_total += b;
      cyc_max = std::max(cyc_max, b);
    }
    const std::size_t cyc_avg = cyc_total / g.node_count();
    std::cout << std::left << std::setw(12) << name << std::setw(16) << base
              << std::setw(16) << dd_col << std::setw(18) << cyc_avg << std::setw(18)
              << cyc_max << dd_col + cyc_avg << "\n";
  }

  // FCP's comparison point: per-flow routing state accumulated at routers.
  std::cout << "\nFCP cached per-(failure-list, destination) tables after routing all\n"
               "affected pairs of every single-link failure (one shared cache):\n";
  std::cout << std::left << std::setw(12) << "topology" << std::setw(14)
            << "spf-runs" << std::setw(16) << "cached-tables"
            << "approx bytes (n * 12 per table)\n";
  for (const auto& [name, g] : topologies) {
    route::FcpRouting fcp(g);
    const auto flows = sim::all_pairs_flows(g);
    sim::BatchResult batch;
    for (const auto& failures : net::all_single_failures(g)) {
      net::Network network(g);
      for (auto e : failures.elements()) network.fail_link(e);
      sim::route_batch(network, fcp, flows, sim::TraceMode::kStats, batch);
    }
    const std::size_t bytes = fcp.cached_tables() * g.node_count() * 12;
    std::cout << std::left << std::setw(12) << name << std::setw(14)
              << fcp.spf_computations() << std::setw(16) << fcp.cached_tables() << bytes
              << "\n";
  }

  // Control-plane comparison point: the event-sim's distributed IGP.  Each
  // router used to own a full RoutingDb copy (16 B * n^2 each, n of them);
  // the copy-on-write design keeps one shared pristine db plus sparse
  // per-router overlay rows, measured here after a converged link failure.
  std::cout << "\nEvent-sim IGP state after one link failure converges "
               "(copy-on-write overlays vs per-router table copies):\n";
  std::cout << std::left << std::setw(12) << "topology" << std::setw(10) << "routers"
            << std::setw(16) << "cow-bytes" << std::setw(20) << "naive-copy-bytes"
            << "reduction\n";
  graph::Rng isp_rng(0xC0F);
  const std::pair<const char*, graph::Graph> igp_topologies[] = {
      {"geant", topo::geant()},
      {"isp-256", graph::hierarchical_isp(graph::sized_isp_params(256), isp_rng).graph},
  };
  for (const auto& [name, g] : igp_topologies) {
    net::Network network(g);
    net::Simulator sim;
    route::LinkStateIgp igp(sim, network);
    sim.at(0.0, [&] {
      network.fail_link(0);
      igp.on_link_failure(0);
    });
    sim.run();
    const std::size_t n = g.node_count();
    const std::size_t cow = igp.table_bytes();
    const std::size_t naive = n * (n * n * 16);  // next+dist+hops columns each
    std::cout << std::left << std::setw(12) << name << std::setw(10) << n
              << std::setw(16) << cow << std::setw(20) << naive << std::fixed
              << std::setprecision(1) << static_cast<double>(naive) / cow << "x\n";
  }
  return 0;
}
