// Failure storms: million-scenario sampled correlated-failure sweeps with
// flat-memory streaming reduction.
//
// The paper's multi-failure guarantee is phrased over failure combinations,
// and the combinations operators plan for are correlated (conduit cuts,
// storm fronts, compound outages).  This bench drives net::StormModel
// distributions over SRLG catalogs through analysis::run_storm_experiment at
// scenario counts no per-scenario result vector could hold, and certifies
// the machinery three ways:
//
//   1. oracle convergence: on a small enumerable catalog (random conduit
//      SRLGs on GEANT -- the section that used to live in
//      bench_correlated_failures), sampled quantiles / means / probabilities
//      are compared against run_exhaustive_storm's exact weighted values over
//      all 2^G subsets, with relative errors reported and bounds asserted at
//      large sample counts;
//   2. determinism: the full sampled sweep is repeated on 1/2/4/8-thread
//      executors and every streamed reducer output (running sums, P^2 marker
//      estimates, top-K tables) is asserted bit-identical across pool sizes;
//   3. throughput and memory: scenarios/sec per thread count, plus peak RSS,
//      which stays flat because the sweep state is one slot ring, per-worker
//      scratch and the reducers.
//
// Emits BENCH_failure_storms.json (also printed):
//
//   { "bench": "failure_storms", "topology": "geant", "scenarios": S,
//     "catalog_groups": G, "disconnecting_groups": D, "model": "...",
//     "calm_fraction": ..., "disconnected_fraction": ...,
//     "oracle": { "groups": ..., "subsets": ..., "sampled_scenarios": ...,
//       "protocols": [ { "protocol": ..., "oracle_mean_max_utilization": ...,
//         "sampled_mean_max_utilization": ..., "mean_utilization_error": ...,
//         "oracle_loss_probability": ..., "sampled_loss_probability": ... },
//         ... ] },
//     "threads": [ { "threads": T, "ms": ..., "scenarios_per_second": ... },
//       ... ],
//     "bit_identical_across_threads": true,
//     "protocols": [ { "protocol": ..., "mean_max_utilization": ...,
//       "quantiles": [...], "utilization_quantiles": [...],
//       "stretch_quantiles": [...], "delivered_fraction": ...,
//       "overload_rate": ..., "worst": [ { "scenario": ...,
//       "max_utilization": ..., "lost_pps": ..., "stranded_pps": ...,
//       "failed_edges": ..., "failed_groups": [...] }, ... ] }, ... ],
//     "resilience": { "fault_plan": "...", "stop_reason": "...",
//       "completed_units": ..., "checkpoint_bytes": ..., "resumed": ...,
//       "bit_identical_after_resume": true, "deadline": { ... } },
//     "peak_rss_mb": ... }
//
// Section 4 (resilience) interrupts the sweep -- a scenario budget at half
// the sweep by default, or whatever PR_FAULT_THROW_UNIT / PR_FAULT_STALL_UNIT
// / PR_FAULT_MALFORMED_UNIT / PR_FAULT_FAIL_CHECKPOINT inject (CI's
// fault-injection smoke) -- then resumes from the checkpoint and requires the
// final reducers bit-identical to the uninterrupted reference; a second leg
// does the same through a 25 ms wall-clock deadline.
//
//   $ ./bench_failure_storms [scenarios 1..10000000] [threads 0..N]
//                            [top_k 1..100]
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/protocols.hpp"
#include "analysis/storm.hpp"
#include "analysis/traffic.hpp"
#include "net/storm_model.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_log.hpp"
#include "sim/fault_plan.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/run_control.hpp"
#include "sim/signal_guard.hpp"
#include "topo/topologies.hpp"
#include "traffic/capacity.hpp"
#include "traffic/demand.hpp"
#include "util/atomic_file.hpp"

namespace {

using namespace pr;
using Clock = std::chrono::steady_clock;

constexpr double kTotalDemandPps = 1e6;
constexpr double kBaselineUtilization = 0.6;
constexpr double kOutageProbability = 0.02;  // per geographic bundle, per scenario

double elapsed_ms(Clock::time_point start) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                 Clock::now() - start)
                                 .count()) /
         1e3;
}

double peak_rss_mb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: kilobytes
}

/// Capacity plan sized so the busiest pristine SPF interface runs at the
/// baseline utilization (same sizing rule as bench_traffic_sweep).
traffic::CapacityPlan size_plan(const graph::Graph& g,
                                const analysis::ProtocolSuite& suite,
                                const traffic::TrafficMatrix& demand) {
  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  analysis::collect_demand_flows(demand, flows, demands);
  net::Network network(g);
  const auto spf = suite.spf().make(network);
  traffic::LoadMap load;
  sim::BatchResult batch;
  sim::route_batch(network, *spf, flows, demands, load, sim::TraceMode::kStats, batch);
  double peak = 0.0;
  for (const double v : load.darts()) peak = std::max(peak, v);
  return traffic::CapacityPlan::uniform(g, peak / kBaselineUtilization);
}

/// Every streamed output, bit for bit: running sums, P^2 estimates, volume
/// totals, counters and the top-K tables.  Any divergence between thread
/// counts is a determinism bug, not noise.
void require_identical(const analysis::StormExperimentResult& want,
                       const analysis::StormExperimentResult& got,
                       std::size_t threads) {
  const auto fail = [threads](const std::string& what) {
    throw std::runtime_error("storm sweep diverged at " + std::to_string(threads) +
                             " threads: " + what);
  };
  if (got.calm_scenarios != want.calm_scenarios ||
      got.disconnected_scenarios != want.disconnected_scenarios ||
      !(got.failed_groups == want.failed_groups) ||
      !(got.failed_edges == want.failed_edges)) {
    fail("scenario-shape streams");
  }
  if (got.protocols.size() != want.protocols.size()) fail("protocol count");
  for (std::size_t i = 0; i < want.protocols.size(); ++i) {
    const analysis::StormProtocolResult& a = want.protocols[i];
    const analysis::StormProtocolResult& b = got.protocols[i];
    if (!(a.utilization == b.utilization) || !(a.stretch == b.stretch)) {
      fail(a.name + " running summaries");
    }
    if (a.utilization_quantiles != b.utilization_quantiles ||
        a.stretch_quantiles != b.stretch_quantiles) {
      fail(a.name + " quantile estimates");
    }
    if (a.delivered_pps != b.delivered_pps || a.lost_pps != b.lost_pps ||
        a.stranded_pps != b.stranded_pps || a.overloaded_links != b.overloaded_links ||
        a.overloaded_scenarios != b.overloaded_scenarios ||
        a.lossy_scenarios != b.lossy_scenarios ||
        a.rerouted_flows != b.rerouted_flows) {
      fail(a.name + " volume/counter totals");
    }
    if (a.worst.size() != b.worst.size()) fail(a.name + " top-K size");
    for (std::size_t k = 0; k < a.worst.size(); ++k) {
      if (a.worst[k].key != b.worst[k].key || a.worst[k].id != b.worst[k].id ||
          a.worst[k].value.failed_groups != b.worst[k].value.failed_groups) {
        fail(a.name + " top-K entry " + std::to_string(k));
      }
    }
  }
}

double relative_error(double got, double want) {
  if (want == 0.0) return std::abs(got);
  return std::abs(got - want) / std::abs(want);
}

void emit_double_array(std::ostringstream& json, const std::vector<double>& values) {
  json << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    json << (i == 0 ? "" : ", ") << values[i];
  }
  json << "]";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scenario_count = 50000;
  std::size_t threads_cap = 0;  // 0 = up to 8 / hardware
  std::size_t top_k = 10;
  bool args_ok =
      (argc <= 1 ||
       (sim::parse_count_arg(argv[1], 10000000, scenario_count) && scenario_count > 0));
  if (args_ok && argc > 2) {
    try {
      threads_cap = sim::threads_from_arg(argc, argv, 2);
    } catch (const std::invalid_argument&) {
      args_ok = false;
    }
  }
  args_ok = args_ok &&
            (argc <= 3 || (sim::parse_count_arg(argv[3], 100, top_k) && top_k > 0));
  if (!args_ok || argc > 4) {
    std::cerr << "usage: bench_failure_storms [scenarios 1..10000000] "
                 "[threads 0..N] [top_k 1..100]\n";
    return 1;
  }

  const graph::Graph g = topo::geant();
  const analysis::ProtocolSuite suite(g);
  const std::vector<analysis::NamedFactory> protocols = {suite.pr(), suite.lfa(),
                                                         suite.reconvergence()};
  const traffic::TrafficMatrix demand =
      traffic::gravity_demand(g, kTotalDemandPps, traffic::GravityMass::kDegree);
  const traffic::CapacityPlan plan = size_plan(g, suite, demand);

  // The storm catalog: one geographic bundle per node (all links within one
  // hop), failing independently per scenario.  The disconnecting-group count
  // is the operator-facing risk preamble -- and now costs one shared scratch
  // instead of a fresh BFS allocation per group.
  const net::SrlgCatalog catalog = net::geographic_srlgs(g, 2);
  const auto risky = catalog.disconnecting_groups();
  const net::IndependentOutages model =
      net::IndependentOutages::uniform(catalog, kOutageProbability);

  analysis::StormSweepConfig config;
  config.scenarios = scenario_count;
  config.seed = 0x5708;
  config.top_k = top_k;

  std::cout << "failure storms on geant: " << g.node_count() << " nodes, "
            << g.edge_count() << " links, " << demand.pair_count()
            << " demand pairs\n"
            << "catalog: " << catalog.group_count() << " geographic bundles, "
            << risky.size() << " would partition the network\n"
            << "model: " << model.describe() << "\n\n";

  // Graceful shutdown: one guard for the whole bench.  SIGINT/SIGTERM cancel
  // whichever controlled leg is active (rebind below); the uncontrolled
  // sections honour the request at the next section boundary.  Either way the
  // process leaves with the distinct resumable status instead of dying
  // mid-artifact-write.
  sim::RunControl signal_control;
  sim::SignalGuard guard(signal_control);
  const auto bail_if_signalled = [&guard] {
    if (guard.triggered()) {
      std::cerr << "bench_failure_storms: interrupted by signal "
                << guard.signal_number() << "; exiting "
                << sim::kInterruptedExitStatus << "\n";
      std::exit(sim::kInterruptedExitStatus);
    }
  };

  std::ostringstream json;
  json << "{\n  \"bench\": \"failure_storms\",\n  \"topology\": \"geant\",\n"
       << "  \"scenarios\": " << scenario_count << ",\n  \"catalog_groups\": "
       << catalog.group_count() << ",\n  \"disconnecting_groups\": " << risky.size()
       << ",\n  \"model\": \"" << model.describe() << "\",\n  \"top_k\": " << top_k;

  // -- Section 1: sampled estimates vs the exhaustive weighted oracle -------
  //
  // A 12-group random-conduit catalog (the SRLG setup bench_correlated_failures
  // used to sweep exhaustively) is small enough to enumerate all 2^12 subsets
  // with exact probabilities; the sampled sweep over the same model must
  // converge to those values.
  {
    graph::Rng rng(0xA5);
    const net::SrlgCatalog small_catalog = net::random_srlgs(g, 12, 4, rng);
    const net::IndependentOutages small_model =
        net::IndependentOutages::uniform(small_catalog, 0.08);
    const auto oracle =
        analysis::run_exhaustive_storm(g, demand, plan, small_model, protocols);

    analysis::StormSweepConfig sampled_config = config;
    sampled_config.seed = 0x0AC1E;
    sim::SweepExecutor executor(threads_cap);
    const auto sampled = analysis::run_storm_experiment(
        g, demand, plan, small_model, protocols, sampled_config, executor);

    std::cout << "-- Oracle convergence: " << small_catalog.group_count()
              << " random conduit groups, " << oracle.scenarios
              << " enumerated subsets (total probability " << std::setprecision(6)
              << oracle.total_probability << "), " << scenario_count
              << " sampled scenarios --\n";
    json << ",\n  \"oracle\": { \"groups\": " << small_catalog.group_count()
         << ", \"subsets\": " << oracle.scenarios
         << ", \"sampled_scenarios\": " << scenario_count
         << ",\n    \"protocols\": [";

    for (std::size_t i = 0; i < protocols.size(); ++i) {
      const analysis::StormOracleProtocol& o = oracle.protocols[i];
      const analysis::StormProtocolResult& s = sampled.protocols[i];
      const double n = static_cast<double>(sampled.scenarios);
      const double sampled_mean_util = s.utilization.mean();
      const double sampled_loss_prob = static_cast<double>(s.lossy_scenarios) / n;
      const double mean_err = relative_error(sampled_mean_util, o.mean_max_utilization);
      const double delivered_err = relative_error(
          s.delivered_pps / n, o.expected_delivered_pps);

      std::cout << "  " << std::left << std::setw(26) << o.name << std::right
                << std::fixed << std::setprecision(4) << " mean-U oracle "
                << o.mean_max_utilization << " sampled " << sampled_mean_util
                << " (err " << std::setprecision(5) << mean_err << "), P(loss) oracle "
                << o.loss_probability << " sampled " << sampled_loss_prob << "\n";

      json << (i == 0 ? "" : ",") << "\n      { \"protocol\": \"" << o.name << "\""
           << ", \"oracle_mean_max_utilization\": " << o.mean_max_utilization
           << ", \"sampled_mean_max_utilization\": " << sampled_mean_util
           << ", \"mean_utilization_error\": " << mean_err
           << ", \"oracle_mean_max_stretch\": " << o.mean_max_stretch
           << ", \"sampled_mean_max_stretch\": " << s.stretch.mean()
           << ", \"oracle_loss_probability\": " << o.loss_probability
           << ", \"sampled_loss_probability\": " << sampled_loss_prob
           << ", \"oracle_overload_probability\": " << o.overload_probability
           << ", \"oracle_utilization_quantiles\": ";
      emit_double_array(json, o.utilization_quantiles);
      json << ", \"sampled_utilization_quantiles\": ";
      emit_double_array(json, s.utilization_quantiles);
      json << " }";

      // The law-of-large-numbers teeth: at real sample counts the sweep is
      // broken if it has not converged on the means.
      if (scenario_count >= 50000 && (mean_err > 0.05 || delivered_err > 0.01)) {
        throw std::runtime_error("sampled storm failed to converge to the "
                                 "exhaustive oracle for " + o.name);
      }
    }
    json << "\n    ] }";
    std::cout << "\n";
  }
  bail_if_signalled();

  // -- Section 2 + 3: the full sampled storm -- determinism across thread
  // counts, throughput curve, streamed distributions and worst scenarios ----
  analysis::StormExperimentResult reference;
  bool have_reference = false;
  json << ",\n  \"threads\": [";
  std::cout << "-- Sampled storm, " << scenario_count
            << " scenarios: threads curve (bit-identity checked) --\n";
  bool first_threads = true;
  for (const std::size_t threads : {1U, 2U, 4U, 8U}) {
    if (threads_cap != 0 && threads > threads_cap) break;
    sim::SweepExecutor executor(threads);
    const auto start = Clock::now();
    auto result =
        analysis::run_storm_experiment(g, demand, plan, model, protocols, config, executor);
    const double ms = elapsed_ms(start);
    const double scen_per_s = ms > 0.0 ? static_cast<double>(scenario_count) * 1000.0 / ms
                                       : 0.0;
    if (have_reference) {
      require_identical(reference, result, threads);
    } else {
      reference = std::move(result);
      have_reference = true;
    }
    std::cout << "  " << std::setw(2) << threads << " thread(s): " << std::fixed
              << std::setprecision(0) << ms << " ms, " << scen_per_s
              << " scenarios/s\n";
    json << (first_threads ? "" : ",") << "\n    { \"threads\": " << threads
         << ", \"ms\": " << ms << ", \"scenarios_per_second\": " << scen_per_s
         << " }";
    first_threads = false;
  }
  json << "\n  ],\n  \"bit_identical_across_threads\": true";

  const double n = static_cast<double>(reference.scenarios);
  json << ",\n  \"calm_fraction\": "
       << static_cast<double>(reference.calm_scenarios) / n
       << ",\n  \"disconnected_fraction\": "
       << static_cast<double>(reference.disconnected_scenarios) / n
       << ",\n  \"mean_failed_groups\": " << reference.failed_groups.mean()
       << ",\n  \"mean_failed_edges\": " << reference.failed_edges.mean();

  std::cout << "\ncalm " << std::setprecision(3)
            << static_cast<double>(reference.calm_scenarios) / n << ", disconnected "
            << static_cast<double>(reference.disconnected_scenarios) / n
            << ", mean failed groups " << reference.failed_groups.mean() << "\n\n";

  json << ",\n  \"protocols\": [";
  for (std::size_t i = 0; i < reference.protocols.size(); ++i) {
    const analysis::StormProtocolResult& p = reference.protocols[i];
    json << (i == 0 ? "" : ",") << "\n    { \"protocol\": \"" << p.name << "\""
         << ", \"mean_max_utilization\": " << p.utilization.mean()
         << ", \"worst_max_utilization\": " << p.utilization.max
         << ", \"mean_max_stretch\": " << p.stretch.mean()
         << ", \"delivered_fraction\": "
         << p.delivered_fraction(reference.offered_pps, reference.scenarios)
         << ", \"overload_rate\": " << static_cast<double>(p.overloaded_scenarios) / n
         << ", \"loss_rate\": " << static_cast<double>(p.lossy_scenarios) / n
         << ", \"rerouted_flows\": " << p.rerouted_flows << ",\n      \"quantiles\": ";
    emit_double_array(json, p.quantiles);
    json << ", \"utilization_quantiles\": ";
    emit_double_array(json, p.utilization_quantiles);
    json << ", \"stretch_quantiles\": ";
    emit_double_array(json, p.stretch_quantiles);
    json << ",\n      \"worst\": [";

    std::cout << p.name << ": mean-U " << std::setprecision(4)
              << p.utilization.mean() << ", U quantiles {";
    for (std::size_t q = 0; q < p.quantiles.size(); ++q) {
      std::cout << (q == 0 ? "" : ", ") << "p" << std::setprecision(0)
                << p.quantiles[q] * 100 << ": " << std::setprecision(4)
                << p.utilization_quantiles[q];
    }
    std::cout << "}, delivered "
              << p.delivered_fraction(reference.offered_pps, reference.scenarios)
              << ", worst scenarios:\n";

    for (std::size_t k = 0; k < p.worst.size(); ++k) {
      const auto& entry = p.worst[k];
      const analysis::StormScenarioRecord& rec = entry.value;
      json << (k == 0 ? "" : ",") << "\n        { \"scenario\": " << entry.id
           << ", \"max_utilization\": " << rec.max_utilization
           << ", \"max_stretch\": " << rec.max_stretch
           << ", \"lost_pps\": " << rec.lost_pps
           << ", \"stranded_pps\": " << rec.stranded_pps
           << ", \"failed_edges\": " << rec.failed_edges << ", \"failed_groups\": [";
      for (std::size_t gi = 0; gi < rec.failed_groups.size(); ++gi) {
        json << (gi == 0 ? "" : ", ") << rec.failed_groups[gi];
      }
      json << "] }";
      if (k < 3) {
        std::cout << "  #" << entry.id << ": U " << std::setprecision(4)
                  << rec.max_utilization << ", " << rec.failed_groups.size()
                  << " groups / " << rec.failed_edges << " edges, lost "
                  << std::setprecision(0) << rec.lost_pps << " pps\n";
      }
    }
    json << "\n      ] }";
    std::cout << "\n";
  }
  json << "\n  ]";
  bail_if_signalled();

  // -- Section 3b: telemetry -- attach the obs layer, prove enabled ==
  // disabled bit for bit, and measure its overhead on the same warmed pool.
  // The progress line is opt-in (PR_PROGRESS=<ms>); the stall detector
  // (PR_STALL_MS, default 5 s) always reports to stderr because a stall is
  // exceptional by definition.
  obs::Registry registry;
  obs::TraceLog trace(1 << 16);
  obs::SweepProgress progress(obs::SweepProgress::options_from_env());
  if (std::getenv("PR_PROGRESS") != nullptr) {
    progress.on_snapshot([](const obs::ProgressSnapshot& s) {
      std::cerr << obs::SweepProgress::format_line(s) << "\n";
    });
  }
  progress.on_stall([](const obs::StallEvent& e) {
    std::cerr << "stall: worker " << e.worker << " unit " << e.unit
              << " in-flight " << e.in_flight_ns / 1000000 << " ms\n";
  });

  double telemetry_ms = 0.0;
  double overhead_fraction = 0.0;
  {
    sim::SweepExecutor executor(threads_cap);
    // Untimed warmup so neither leg pays the cold per-worker cache builds,
    // then interleaved best-of-2 plain/observed passes: interleaving cancels
    // machine drift, best-of cancels one-off scheduling noise.  A single
    // cold-vs-warm pair can misreport the sub-1% real cost by several
    // percent either way.
    const auto warmup =
        analysis::run_storm_experiment(g, demand, plan, model, protocols, config, executor);
    require_identical(reference, warmup, threads_cap);

    double plain_ms = std::numeric_limits<double>::infinity();
    telemetry_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 2; ++rep) {
      executor.set_telemetry(sim::SweepTelemetry{});
      auto t0 = Clock::now();
      const auto plain =
          analysis::run_storm_experiment(g, demand, plan, model, protocols, config, executor);
      plain_ms = std::min(plain_ms, elapsed_ms(t0));
      require_identical(reference, plain, threads_cap);

      registry.reset();
      trace.clear();
      executor.set_telemetry(sim::SweepTelemetry{&registry, &trace, &progress});
      t0 = Clock::now();
      const auto observed =
          analysis::run_storm_experiment(g, demand, plan, model, protocols, config, executor);
      telemetry_ms = std::min(telemetry_ms, elapsed_ms(t0));
      require_identical(reference, observed, threads_cap);
    }
    overhead_fraction = plain_ms > 0.0 ? (telemetry_ms - plain_ms) / plain_ms : 0.0;

    const obs::Counters total = registry.aggregate();
    const std::uint64_t hits = total.get(obs::Counter::kRouteCacheHits);
    const std::uint64_t lookups = hits + total.get(obs::Counter::kRouteCacheRebuilds) +
                                  total.get(obs::Counter::kRouteCachePristineBuilds);
    const std::uint64_t repairs = total.get(obs::Counter::kSpfRepairs) +
                                  total.get(obs::Counter::kSpfTreeRepairs);
    const std::uint64_t spf_ops = repairs + total.get(obs::Counter::kSpfFullBuilds);
    std::cout << "-- Telemetry: enabled run bit-identical to disabled, overhead "
              << std::setprecision(2) << overhead_fraction * 100.0 << "% ("
              << std::setprecision(0) << plain_ms << " -> " << telemetry_ms
              << " ms); cache hit rate " << std::setprecision(3)
              << (lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups)
                              : 0.0)
              << ", SPF repair fraction "
              << (spf_ops > 0 ? static_cast<double>(repairs) / static_cast<double>(spf_ops)
                              : 0.0)
              << ", " << trace.size() << " trace spans --\n\n";
  }
  json << ",\n  \"telemetry\": " << obs::telemetry_json(registry, telemetry_ms)
       << ",\n  \"telemetry_overhead_fraction\": " << overhead_fraction
       << ",\n  \"telemetry_bit_identical\": true";
  bail_if_signalled();

  // -- Section 4: resilience -- interrupt the sweep, checkpoint, resume, and
  // require the resumed reducers bit-identical to the uninterrupted
  // reference.  A fault plan from the PR_FAULT_* environment (CI's
  // fault-injection smoke) rides along on the first leg; without one the
  // interrupt is a clean scenario budget at half the sweep.  Either way the
  // second leg resumes from the checkpoint with no faults and must land on
  // exactly the Section 2 reference.
  {
    sim::SweepExecutor executor(threads_cap);
    // The obs layer stays attached through the fault/deadline legs: injected
    // stalls exercise the stall detector, and the trace picks up fault,
    // truncation and checkpoint events for PR_TRACE_EXPORT.  Checkpoint
    // serialization runs on THIS driver thread, so it gets its own registry
    // lane (one past the workers) as the scoped sink.
    executor.set_telemetry(sim::SweepTelemetry{&registry, &trace, &progress});
    registry.ensure_workers(executor.thread_count() + 1);
    obs::ScopedSink driver_sink(&registry.worker(executor.thread_count()));
    const sim::FaultPlan faults = sim::FaultPlan::from_env();

    sim::RunControl control;
    control.set_unit_budget(scenario_count / 2);
    if (!faults.empty()) control.set_fault_plan(&faults);
    guard.rebind(control);  // a signal now cancels THIS leg's sweep
    analysis::StormRunOptions options;
    options.control = &control;
    const auto interrupt_start = Clock::now();
    const auto partial = analysis::run_storm_experiment_resilient(
        g, demand, plan, model, protocols, config, executor, options);
    bail_if_signalled();

    sim::RunControl resume_control;
    guard.rebind(resume_control);
    analysis::StormRunOptions resume_options;
    resume_options.control = &resume_control;
    resume_options.resume_from = partial.checkpoint;
    const auto finished = analysis::run_storm_experiment_resilient(
        g, demand, plan, model, protocols, config, executor, resume_options);
    const double interrupt_resume_ms = elapsed_ms(interrupt_start);
    bail_if_signalled();
    require_identical(reference, finished.result, threads_cap);

    std::cout << "-- Resilience: " << sim::to_string(partial.outcome.stop_reason)
              << " at " << partial.completed_scenarios << "/" << scenario_count
              << " (fault plan: " << faults.describe() << "), checkpoint "
              << partial.checkpoint.size() << " bytes, resume"
              << (finished.resumed ? "d" : " (fresh)")
              << " -> bit-identical to the uninterrupted sweep --\n";
    if (!partial.checkpoint_error.empty()) {
      std::cout << "   checkpoint error on the first leg: "
                << partial.checkpoint_error << "\n";
    }

    // Deadline leg: a wall-clock cut mid-sweep, then resume to completion.
    sim::RunControl deadline_control;
    deadline_control.set_timeout(std::chrono::milliseconds(25));
    guard.rebind(deadline_control);
    analysis::StormRunOptions deadline_options;
    deadline_options.control = &deadline_control;
    const auto cut = analysis::run_storm_experiment_resilient(
        g, demand, plan, model, protocols, config, executor, deadline_options);
    bail_if_signalled();
    sim::RunControl finish_control;
    guard.rebind(finish_control);
    analysis::StormRunOptions finish_options;
    finish_options.control = &finish_control;
    finish_options.resume_from = cut.checkpoint;
    const auto completed = analysis::run_storm_experiment_resilient(
        g, demand, plan, model, protocols, config, executor, finish_options);
    bail_if_signalled();
    require_identical(reference, completed.result, threads_cap);
    std::cout << "   deadline leg: " << sim::to_string(cut.outcome.stop_reason)
              << " at " << cut.completed_scenarios << "/" << scenario_count
              << ", resumed to completion, bit-identical\n\n";

    json << ",\n  \"resilience\": { \"fault_plan\": \"" << faults.describe()
         << "\",\n    \"stop_reason\": \""
         << sim::to_string(partial.outcome.stop_reason)
         << "\", \"completed_units\": " << partial.outcome.completed_units
         << ", \"checkpoint_bytes\": " << partial.checkpoint.size()
         << ", \"resumed\": " << (finished.resumed ? "true" : "false")
         << ", \"interrupt_resume_ms\": " << interrupt_resume_ms
         << ", \"bit_identical_after_resume\": true,\n    \"deadline\": { "
         << "\"timeout_ms\": 25, \"stop_reason\": \""
         << sim::to_string(cut.outcome.stop_reason)
         << "\", \"completed_units\": " << cut.outcome.completed_units
         << ", \"resumed\": " << (completed.resumed ? "true" : "false")
         << ", \"bit_identical_after_resume\": true } }";
  }

  json << ",\n  \"peak_rss_mb\": " << peak_rss_mb() << "\n}\n";

  std::cout << json.str();
  util::atomic_write_file("BENCH_failure_storms.json", json.str());
  std::cerr << "wrote BENCH_failure_storms.json (peak RSS " << peak_rss_mb()
            << " MB)\n";

  if (const char* path = std::getenv("PR_TRACE_EXPORT"); path != nullptr && *path != '\0') {
    util::atomic_write_file(path, trace.export_chrome_json());
    std::cerr << "wrote chrome://tracing export (" << trace.size() << " spans, "
              << trace.dropped() << " dropped) to " << path << "\n";
  }
  return 0;
}
