// Perf bench for the batched forwarding engine: per-packet route_packet vs
// stats-only and full-trace route_batch on a 1k-flow Abilene sweep.
//
// Emits the machine-readable BENCH_route_batch.json schema (also printed to
// stdout) so successive PRs can track the forwarding path's throughput:
//
//   {
//     "bench": "route_batch", "topology": "abilene",
//     "nodes": N, "links": M, "flows": F, "failed_links": K,
//     "repetitions": R,
//     "results": [ { "protocol": "...",
//                    "per_packet_ns_per_flow": ...,
//                    "batch_stats_ns_per_flow": ...,
//                    "batch_full_trace_ns_per_flow": ...,
//                    "speedup_stats_vs_per_packet": ... }, ... ]
//   }
//
// Timings are the best of R repetitions (least-noise estimator for
// throughput benches).
//
//   $ ./bench_route_batch [flows] [repetitions]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/protocols.hpp"
#include "sim/forwarding_engine.hpp"
#include "topo/topologies.hpp"
#include "util/atomic_file.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace pr;

double best_ns_per_flow(std::size_t repetitions, std::size_t flows,
                        const std::function<std::uint64_t()>& work) {
  double best = std::numeric_limits<double>::infinity();
  std::uint64_t checksum = 0;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    const auto start = Clock::now();
    checksum += work();
    const auto ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
            .count());
    best = std::min(best, ns / static_cast<double>(flows));
  }
  if (checksum == 0) throw std::runtime_error("bench delivered nothing");
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t flow_target = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  const std::size_t repetitions = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const graph::Graph g = topo::abilene();
  const analysis::ProtocolSuite suite(g);

  // One failed link so the sweep exercises the recovery paths, not just plain
  // shortest-path forwarding.
  net::Network network(g);
  network.fail_link(0);

  // 1k-flow sweep: all ordered pairs, repeated until the target is reached.
  const auto pairs = sim::all_pairs_flows(g);
  std::vector<sim::FlowSpec> flows;
  flows.reserve(flow_target);
  while (flows.size() < flow_target) {
    for (const auto& pair : pairs) {
      if (flows.size() == flow_target) break;
      flows.push_back(pair);
    }
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"route_batch\",\n"
       << "  \"topology\": \"abilene\",\n"
       << "  \"nodes\": " << g.node_count() << ",\n"
       << "  \"links\": " << g.edge_count() << ",\n"
       << "  \"flows\": " << flows.size() << ",\n"
       << "  \"failed_links\": " << network.failure_count() << ",\n"
       << "  \"repetitions\": " << repetitions << ",\n"
       << "  \"results\": [";

  const std::vector<analysis::NamedFactory> measured = {suite.spf(), suite.pr(),
                                                        suite.fcp()};
  bool first = true;
  for (const auto& factory : measured) {
    const auto proto = factory.make(network);

    const double per_packet =
        best_ns_per_flow(repetitions, flows.size(), [&]() -> std::uint64_t {
          std::uint64_t delivered = 0;
          for (const auto& flow : flows) {
            delivered += net::route_packet(network, *proto, flow.source,
                                           flow.destination)
                             .delivered();
          }
          return delivered;
        });

    sim::BatchResult batch;  // reused: steady-state allocation-free routing
    const double batch_stats =
        best_ns_per_flow(repetitions, flows.size(), [&]() -> std::uint64_t {
          sim::route_batch(network, *proto, flows, sim::TraceMode::kStats, batch);
          return batch.delivered_count();
        });

    sim::BatchResult traced;
    const double batch_traced =
        best_ns_per_flow(repetitions, flows.size(), [&]() -> std::uint64_t {
          sim::route_batch(network, *proto, flows, sim::TraceMode::kFullTrace, traced);
          return traced.delivered_count();
        });

    json << (first ? "" : ",") << "\n    { \"protocol\": \"" << proto->name()
         << "\",\n      \"per_packet_ns_per_flow\": " << per_packet
         << ",\n      \"batch_stats_ns_per_flow\": " << batch_stats
         << ",\n      \"batch_full_trace_ns_per_flow\": " << batch_traced
         << ",\n      \"speedup_stats_vs_per_packet\": " << per_packet / batch_stats
         << " }";
    first = false;
  }
  json << "\n  ]\n}\n";

  std::cout << json.str();
  util::atomic_write_file("BENCH_route_batch.json", json.str());
  std::cerr << "wrote BENCH_route_batch.json\n";
  return 0;
}
