// Incremental scenario SPF vs from-scratch routing rebuilds.
//
// PR 1 made forwarding allocation-free and PR 2 parallelised scenario
// enumeration, leaving per-scenario control-plane rebuilds (n full Dijkstras
// per RoutingDb) as the sweep bottleneck.  This bench measures the delta
// path that replaced them: per-scenario RoutingDb::rebuild() -- skip every
// destination tree the failure set does not touch, repair the rest from the
// orphaned-subtree frontier -- against fresh RoutingDb construction, on the
// paper topologies plus generated ones, for single- and multi-link failure
// sets.  Equivalence is asserted (bit-identical tables) before anything is
// timed.  Also reports the end-to-end effect: a GEANT single-failure
// paper-trio stretch sweep with fresh per-scenario tables ("before") vs the
// ScenarioRoutingCache path ("after").
//
// Emits BENCH_spf_incremental.json (also printed):
//
//   {
//     "bench": "spf_incremental", "repetitions": R,
//     "topologies": [ { "name": ..., "nodes": N, "links": M,
//         "single": { "scenarios": S, "full_ms": ..., "incremental_ms": ...,
//                     "speedup": ... },
//         "multi":  { "failures": 3, ... } }, ... ],
//     "geomean_speedup_single_geant_or_larger": ...,
//     "fig2_sweep_geant_single": { "fresh_tables_ms": ...,
//                                  "cached_tables_ms": ..., "speedup": ... }
//   }
//
// Timings are the best of R repetitions.
//
//   $ ./bench_spf_incremental [repetitions 1..100] [multi scenarios 1..1000]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/protocols.hpp"
#include "analysis/stretch.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "graph/spf_workspace.hpp"
#include "net/failure_model.hpp"
#include "route/routing_db.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"
#include "util/atomic_file.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace pr;

double best_ms(std::size_t repetitions, const std::function<void()>& work) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    const auto start = Clock::now();
    work();
    const auto ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
            .count());
    best = std::min(best, ns / 1e6);
  }
  return best;
}

void require_identical(const route::RoutingDb& incremental,
                       const route::RoutingDb& fresh, const std::string& where) {
  const std::size_t n = incremental.graph().node_count();
  for (graph::NodeId dest = 0; dest < n; ++dest) {
    for (graph::NodeId at = 0; at < n; ++at) {
      if (incremental.next_dart(at, dest) != fresh.next_dart(at, dest) ||
          incremental.cost(at, dest) != fresh.cost(at, dest) ||
          incremental.hops(at, dest) != fresh.hops(at, dest)) {
        throw std::runtime_error("incremental rebuild diverged from scratch: " +
                                 where);
      }
    }
  }
}

struct ScenarioSetTiming {
  std::size_t scenarios = 0;
  double full_ms = 0;
  double incremental_ms = 0;

  [[nodiscard]] double speedup() const {
    return incremental_ms > 0 ? full_ms / incremental_ms : 0.0;
  }
};

/// Times one scenario set: fresh RoutingDb per scenario vs in-place rebuild
/// on a pristine-built db (the cache's steady state).  Verifies bit-identical
/// tables for every scenario before timing.
ScenarioSetTiming time_scenarios(const graph::Graph& g,
                                 const std::vector<graph::EdgeSet>& scenarios,
                                 std::size_t repetitions) {
  route::RoutingDb db(g);
  graph::SpfWorkspace ws;
  for (const auto& failures : scenarios) {
    db.rebuild(failures, ws);
    require_identical(db, route::RoutingDb(g, &failures), "verification pass");
  }

  ScenarioSetTiming t;
  t.scenarios = scenarios.size();
  t.full_ms = best_ms(repetitions, [&] {
    for (const auto& failures : scenarios) {
      const route::RoutingDb fresh(g, &failures);
      // Keep the construction observable.
      if (fresh.graph().node_count() == 0) throw std::logic_error("empty graph");
    }
  });
  t.incremental_ms = best_ms(repetitions, [&] {
    for (const auto& failures : scenarios) db.rebuild(failures, ws);
  });
  return t;
}

std::string json_set(const char* key, const ScenarioSetTiming& t,
                     std::size_t failures) {
  std::ostringstream out;
  out << "\"" << key << "\": { \"failures\": " << failures
      << ", \"scenarios\": " << t.scenarios << ", \"full_ms\": " << t.full_ms
      << ", \"incremental_ms\": " << t.incremental_ms
      << ", \"speedup\": " << t.speedup() << " }";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t repetitions = 5;
  std::size_t multi_scenarios = 60;
  const bool args_ok =
      (argc <= 1 ||
       (sim::parse_count_arg(argv[1], 100, repetitions) && repetitions > 0)) &&
      (argc <= 2 || (sim::parse_count_arg(argv[2], 1000, multi_scenarios) &&
                     multi_scenarios > 0));
  if (!args_ok || argc > 3) {
    std::cerr << "usage: bench_spf_incremental [repetitions 1..100] "
                 "[multi scenarios 1..1000]\n";
    return 1;
  }

  // Paper topologies plus generated ones (a mid-size random 2-edge-connected
  // graph and a larger grid) so the index/repair costs are exercised beyond
  // ISP scale.
  graph::Rng topo_rng(0x5bf);
  std::vector<std::pair<std::string, graph::Graph>> topologies;
  topologies.emplace_back("abilene", topo::abilene());
  topologies.emplace_back("teleglobe", topo::teleglobe());
  topologies.emplace_back("geant", topo::geant());
  topologies.emplace_back("gen-2ec-60",
                          graph::random_two_edge_connected(60, 45, topo_rng));
  topologies.emplace_back("gen-grid-10x10", graph::grid(10, 10));

  const std::size_t geant_nodes = topo::geant().node_count();
  const std::size_t kMultiFailures = 3;

  std::ostringstream json;
  json << "{\n  \"bench\": \"spf_incremental\",\n  \"repetitions\": " << repetitions
       << ",\n  \"topologies\": [";

  double log_speedup_sum = 0.0;
  std::size_t log_speedup_count = 0;
  bool first = true;
  for (const auto& [name, g] : topologies) {
    const auto single = net::all_single_failures(g);
    graph::Rng rng(0x5bf1);
    const auto multi = net::sample_any_failures(g, kMultiFailures, multi_scenarios, rng);

    const ScenarioSetTiming single_t = time_scenarios(g, single, repetitions);
    const ScenarioSetTiming multi_t = time_scenarios(g, multi, repetitions);
    if (g.node_count() >= geant_nodes) {
      log_speedup_sum += std::log(single_t.speedup());
      ++log_speedup_count;
    }

    json << (first ? "" : ",") << "\n    { \"name\": \"" << name
         << "\", \"nodes\": " << g.node_count() << ", \"links\": " << g.edge_count()
         << ",\n      " << json_set("single", single_t, 1) << ",\n      "
         << json_set("multi", multi_t, kMultiFailures) << " }";
    first = false;

    std::cerr << name << ": single " << single_t.speedup() << "x, multi "
              << multi_t.speedup() << "x\n";
  }
  const double geomean =
      log_speedup_count > 0
          ? std::exp(log_speedup_sum / static_cast<double>(log_speedup_count))
          : 0.0;

  // End-to-end: the GEANT single-failure paper-trio stretch sweep, with
  // per-scenario fresh tables (the pre-cache behaviour, make only) vs the
  // ScenarioRoutingCache path (make_cached).  Both runs produce identical
  // stretch samples; only the control-plane cost differs.
  const graph::Graph geant = topo::geant();
  const analysis::ProtocolSuite suite(geant);
  const auto scenarios = net::all_single_failures(geant);
  std::vector<analysis::NamedFactory> fresh_trio = suite.paper_trio();
  for (auto& factory : fresh_trio) factory.make_cached = nullptr;
  const std::vector<analysis::NamedFactory> cached_trio = suite.paper_trio();

  const auto fresh_result =
      analysis::run_stretch_experiment(geant, scenarios, fresh_trio);
  const auto cached_result =
      analysis::run_stretch_experiment(geant, scenarios, cached_trio);
  for (std::size_t i = 0; i < fresh_result.protocols.size(); ++i) {
    if (fresh_result.protocols[i].stretches != cached_result.protocols[i].stretches) {
      throw std::runtime_error("cached sweep diverged from fresh-tables sweep");
    }
  }
  const double fresh_ms = best_ms(repetitions, [&] {
    (void)analysis::run_stretch_experiment(geant, scenarios, fresh_trio);
  });
  const double cached_ms = best_ms(repetitions, [&] {
    (void)analysis::run_stretch_experiment(geant, scenarios, cached_trio);
  });

  json << "\n  ],\n  \"geomean_speedup_single_geant_or_larger\": " << geomean
       << ",\n  \"fig2_sweep_geant_single\": { \"protocols\": "
       << cached_trio.size() << ", \"scenarios\": " << scenarios.size()
       << ", \"fresh_tables_ms\": " << fresh_ms
       << ", \"cached_tables_ms\": " << cached_ms
       << ", \"speedup\": " << (cached_ms > 0 ? fresh_ms / cached_ms : 0.0)
       << " }\n}\n";

  std::cout << json.str();
  util::atomic_write_file("BENCH_spf_incremental.json", json.str());
  std::cerr << "wrote BENCH_spf_incremental.json (geomean single-link speedup on "
               "GEANT-or-larger: "
            << geomean << "x)\n";
  return 0;
}
