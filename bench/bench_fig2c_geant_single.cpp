// Reproduces Figure 2(c): Geant stretch CCDF, 1 failure(s).
#include "figure2_common.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  const auto g = pr::topo::geant();
  pr::bench::PanelConfig cfg;
  cfg.panel = "Figure 2(c)";
  cfg.topology = "Geant";
  cfg.failures = 1;
  cfg.threads = pr::bench::panel_threads(argc, argv);
  return pr::bench::run_figure2_panel(g, cfg);
}
