// Ablation A5: correlated failures -- node outages and shared-risk link
// groups (SRLGs).
//
// The paper's title promises protection against "link or node failures" and
// its guarantee is phrased over arbitrary failure *combinations*; real
// combinations are correlated (a router reboot takes all its links, a conduit
// cut takes every fibre inside).  This bench exercises both models:
//   * every single node failure on each topology,
//   * randomly generated SRLGs (anchored link bundles) on GEANT,
// reporting coverage and the stretch paid by the saved packets.
#include <iomanip>
#include <iostream>

#include "analysis/coverage.hpp"
#include "analysis/protocols.hpp"
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "graph/connectivity.hpp"
#include "net/failure_model.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  using namespace pr;

  // `bench_correlated_failures [threads]` (falls back to PR_SWEEP_THREADS;
  // 0 = hardware); the node-outage and SRLG sweeps shard over the executor.
  sim::SweepExecutor executor(sim::threads_from_arg(argc, argv, 1));
  std::cout << "sweep: " << executor.thread_count() << " thread(s)\n\n";

  std::cout << "-- Node failures: every router down once, all other pairs --\n\n";
  for (const auto& [name, g] :
       {std::pair{"abilene", topo::abilene()}, {"teleglobe", topo::teleglobe()},
        {"geant", topo::geant()}}) {
    const analysis::ProtocolSuite suite(g);
    const auto scenarios = net::all_node_failures(g);
    const auto coverage = analysis::run_coverage_experiment(
        g, scenarios,
        {suite.pr(), suite.lfa(), suite.lfa_node_protecting(), suite.spf()},
        executor);
    std::cout << "== " << name << " (" << scenarios.size() << " node outages) ==\n"
              << analysis::format_coverage_report(coverage);

    const auto stretch =
        analysis::run_stretch_experiment(g, scenarios, {suite.pr()}, executor);
    std::cout << "PR stretch over saved packets: "
              << analysis::to_string(analysis::summarize(stretch.protocols[0].stretches))
              << "\n\n";
  }

  std::cout << "-- SRLG bundles on GEANT: 25 random conduit groups (<=4 links) --\n\n";
  {
    const auto g = topo::geant();
    const analysis::ProtocolSuite suite(g);
    graph::Rng rng(0xA5);
    const auto catalog = net::random_srlgs(g, 25, 4, rng);
    const auto risky = catalog.disconnecting_groups();
    std::cout << "groups that would partition the network: " << risky.size() << "/"
              << catalog.group_count() << "\n";

    std::vector<graph::EdgeSet> scenarios;
    for (std::size_t i = 0; i < catalog.group_count(); ++i) {
      scenarios.push_back(catalog.scenario(i));
    }
    const auto coverage = analysis::run_coverage_experiment(
        g, scenarios, {suite.pr(), suite.pr_single_bit(), suite.lfa(), suite.spf()},
        executor);
    std::cout << analysis::format_coverage_report(coverage);

    const auto stretch =
        analysis::run_stretch_experiment(g, scenarios, {suite.pr()}, executor);
    std::cout << "PR stretch over saved packets: "
              << analysis::to_string(analysis::summarize(stretch.protocols[0].stretches))
              << "\n";
  }
  return 0;
}
