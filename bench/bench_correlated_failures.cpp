// Ablation A5: correlated failures -- node outages.
//
// The paper's title promises protection against "link or node failures" and
// its guarantee is phrased over arbitrary failure *combinations*; real
// combinations are correlated (a router reboot takes all its links).  This
// bench sweeps every single node failure on each topology, reporting coverage
// and the stretch paid by the saved packets.  The SRLG (shared-risk link
// group) section that used to live here moved to bench_failure_storms, where
// the same random-conduit catalog now serves as the exhaustive small-scale
// oracle that sampled storm estimates must converge to.
#include <iomanip>
#include <iostream>

#include "analysis/coverage.hpp"
#include "analysis/protocols.hpp"
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "graph/connectivity.hpp"
#include "net/failure_model.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  using namespace pr;

  // `bench_correlated_failures [threads]` (falls back to PR_SWEEP_THREADS;
  // 0 = hardware); the node-outage and SRLG sweeps shard over the executor.
  sim::SweepExecutor executor(sim::threads_from_arg(argc, argv, 1));
  std::cout << "sweep: " << executor.thread_count() << " thread(s)\n\n";

  std::cout << "-- Node failures: every router down once, all other pairs --\n\n";
  for (const auto& [name, g] :
       {std::pair{"abilene", topo::abilene()}, {"teleglobe", topo::teleglobe()},
        {"geant", topo::geant()}}) {
    const analysis::ProtocolSuite suite(g);
    const auto scenarios = net::all_node_failures(g);
    const auto coverage = analysis::run_coverage_experiment(
        g, scenarios,
        {suite.pr(), suite.lfa(), suite.lfa_node_protecting(), suite.spf()},
        executor);
    std::cout << "== " << name << " (" << scenarios.size() << " node outages) ==\n"
              << analysis::format_coverage_report(coverage);

    const auto stretch =
        analysis::run_stretch_experiment(g, scenarios, {suite.pr()}, executor);
    std::cout << "PR stretch over saved packets: "
              << analysis::to_string(analysis::summarize(stretch.protocols[0].stretches))
              << "\n\n";
  }

  return 0;
}
