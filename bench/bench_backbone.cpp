// Backbone-scale failure-sweep scaling: nodes x threads x batch width.
//
// The paper's sweeps run on ~10-50 node research topologies; this bench asks
// what the same machinery costs at ISP scale.  Hierarchical core/agg/edge
// topologies from graph::hierarchical_isp (256 / 1k / 4k routers) are swept
// with sampled single-link failure scenarios three ways:
//
//   1. repair drives: the batched destination-tree drive (orphan subtrees
//      found through the pristine children index, sparse column restores,
//      argmax-gated column-max updates) against the per-destination legacy
//      drive, bit-identity checked before anything is timed
//      ("repair_speedup" per scale);
//   2. threads: the same scenario set through SweepExecutor worker pools of
//      1/2/4/8 threads, each worker repairing on its own warm
//      ScenarioRoutingCache, digests checked identical across pool sizes;
//   3. batch width: scenarios amortised per fresh cache (widths 1/4/16/64),
//      pricing the pristine build + incremental-state preparation against
//      the steady-state repair cost it unlocks.
//
// Emits BENCH_backbone.json (also printed):
//
//   {
//     "bench": "backbone", "repetitions": R, "scenarios_requested": S,
//     "scales": [ { "name": "isp-1024", "nodes": N, "links": M,
//         "scenarios": s, "table_mb": ..., "legacy_ms": ...,
//         "batched_ms": ..., "repair_speedup": ...,
//         "scenarios_per_second": ...,
//         "threads": [ { "threads": T, "ms": ..., "speedup": ... }, ... ],
//         "batch_width": [ { "width": W, "per_scenario_ms": ... }, ... ],
//         "phase_ms": { "verify": ..., "legacy": ..., "batched": ...,
//           "threads": ..., "batch_width": ... }, "peak_rss_mb": ... },
//       ... ],
//     "largest_scale_repair_speedup": ...,
//     "telemetry": { "cache_hit_rate": ..., "repair_fraction": ...,
//       "counters": {...}, "phases": {...}, "per_worker": [...] },
//     "peak_rss_mb": ...
//   }
//
// Each scale row carries its own peak-RSS watermark and per-phase wall times
// (verify / legacy / batched / threads / batch-width), so a memory or time
// blow-up is attributable to a scale and phase, not just the process total.
// The telemetry section aggregates obs counters from the thread-curve
// executors (cache hit rate, SPF repair fraction, per-worker utilization).
//
// Timings are the best of R repetitions (batch-width curves are cold-start
// by design and measured once).
//
//   $ ./bench_backbone [max nodes 256..8192] [scenarios 1..1024]
//                      [repetitions 1..100] [threads 0..N]
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "graph/spf_workspace.hpp"
#include "obs/telemetry.hpp"
#include "route/routing_db.hpp"
#include "route/scenario_cache.hpp"
#include "sim/parallel_sweep.hpp"
#include "util/atomic_file.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace pr;

double best_ms(std::size_t repetitions, const std::function<void()>& work) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    const auto start = Clock::now();
    work();
    const auto ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
            .count());
    best = std::min(best, ns / 1e6);
  }
  return best;
}

double once_ms(const std::function<void()>& work) { return best_ms(1, work); }

double elapsed_ms(Clock::time_point start) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                 Clock::now() - start)
                                 .count()) /
         1e3;
}

/// Sampled-row digest of a routing table: cheap enough to run per scenario
/// inside timed loops, sensitive enough that any next-hop or cost divergence
/// at the sampled rows changes it.  FNV-1a.
std::uint64_t table_digest(const route::RoutingDb& db) {
  const std::size_t n = db.graph().node_count();
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  const std::size_t stride = std::max<std::size_t>(1, n / 61);
  for (graph::NodeId dest = 0; dest < n; dest += stride) {
    for (graph::NodeId at = 0; at < n; at += stride) {
      mix(db.next_dart(at, dest));
      mix(db.hops(at, dest));
    }
  }
  mix(db.max_discriminator());
  return h;
}

void require_identical(const route::RoutingDb& got, const route::RoutingDb& want,
                       const std::string& where) {
  const std::size_t n = got.graph().node_count();
  for (graph::NodeId dest = 0; dest < n; ++dest) {
    for (graph::NodeId at = 0; at < n; ++at) {
      if (got.next_dart(at, dest) != want.next_dart(at, dest) ||
          got.cost(at, dest) != want.cost(at, dest) ||
          got.hops(at, dest) != want.hops(at, dest)) {
        throw std::runtime_error("repair drive diverged from oracle: " + where);
      }
    }
  }
  if (got.max_discriminator() != want.max_discriminator()) {
    throw std::runtime_error("max discriminator diverged: " + where);
  }
}

/// Distinct sampled single-link failure scenarios.
std::vector<graph::EdgeSet> sample_single_link(const graph::Graph& g,
                                               std::size_t count, graph::Rng& rng) {
  std::set<graph::EdgeId> picked;
  while (picked.size() < std::min(count, g.edge_count())) {
    picked.insert(static_cast<graph::EdgeId>(rng.below(g.edge_count())));
  }
  std::vector<graph::EdgeSet> scenarios;
  scenarios.reserve(picked.size());
  for (const graph::EdgeId e : picked) {
    graph::EdgeSet s(g.edge_count());
    s.insert(e);
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

double peak_rss_mb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: kilobytes
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_nodes = 4096;
  std::size_t scenario_count = 48;
  std::size_t repetitions = 3;
  std::size_t threads_cap = 0;  // 0 = up to 8 / hardware
  bool args_ok =
      (argc <= 1 ||
       (sim::parse_count_arg(argv[1], 8192, max_nodes) && max_nodes >= 256)) &&
      (argc <= 2 ||
       (sim::parse_count_arg(argv[2], 1024, scenario_count) && scenario_count > 0)) &&
      (argc <= 3 ||
       (sim::parse_count_arg(argv[3], 100, repetitions) && repetitions > 0));
  if (args_ok && argc > 4) {
    try {
      threads_cap = sim::threads_from_arg(argc, argv, 4);
    } catch (const std::invalid_argument&) {
      args_ok = false;
    }
  }
  if (!args_ok || argc > 5) {
    std::cerr << "usage: bench_backbone [max nodes 256..8192] [scenarios 1..1024] "
                 "[repetitions 1..100] [threads 0..N]\n";
    return 1;
  }

  std::vector<std::size_t> scales;
  for (const std::size_t s : {256U, 1024U, 4096U}) {
    if (s <= max_nodes) scales.push_back(s);
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"backbone\",\n  \"repetitions\": " << repetitions
       << ",\n  \"scenarios_requested\": " << scenario_count
       << ",\n  \"scales\": [";

  double largest_speedup = 0.0;
  // Shared across scales: the thread-curve executors attribute SPF repairs,
  // cache builds, and per-worker busy time into this registry; the aggregate
  // becomes the JSON telemetry section.  elapsed accumulates executor wall
  // time so per-worker utilization has a denominator.
  obs::Registry registry;
  double telemetry_elapsed_ms = 0.0;
  bool first_scale = true;
  for (const std::size_t target : scales) {
    graph::Rng topo_rng(0xB0B0 + target);
    const graph::IspTopology isp =
        graph::hierarchical_isp(graph::sized_isp_params(target), topo_rng);
    const graph::Graph& g = isp.graph;
    const std::size_t n = g.node_count();

    graph::Rng scenario_rng(0x5EED0 + target);
    const auto scenarios = sample_single_link(g, scenario_count, scenario_rng);

    // Bit-identity first: batched == legacy == from-scratch.  Full-table
    // oracle compares are O(n^2) each with a fresh n-Dijkstra build, so the
    // deep check covers every scenario at small scale and a prefix above.
    route::RoutingDb batched_db(g);
    route::RoutingDb legacy_db(g);
    graph::SpfWorkspace ws;
    graph::SpfWorkspace legacy_ws;
    const auto verify_t0 = Clock::now();
    const std::size_t deep = n <= 512 ? scenarios.size()
                                      : std::min<std::size_t>(2, scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      batched_db.rebuild(scenarios[i], ws, route::RepairDrive::kBatchedTrees);
      legacy_db.rebuild(scenarios[i], legacy_ws, route::RepairDrive::kPerDestination);
      const std::string where =
          "isp-" + std::to_string(target) + " scenario " + std::to_string(i);
      if (i < deep) {
        const route::RoutingDb fresh(g, &scenarios[i]);
        require_identical(batched_db, fresh, where + " (vs scratch)");
        require_identical(legacy_db, fresh, where + " (legacy vs scratch)");
      } else if (table_digest(batched_db) != table_digest(legacy_db)) {
        throw std::runtime_error("drive digests diverged: " + where);
      }
    }

    const double verify_wall_ms = elapsed_ms(verify_t0);

    // Repair-drive throughput: whole scenario set per timing, warm state.
    const auto legacy_t0 = Clock::now();
    const double legacy_ms = best_ms(repetitions, [&] {
      for (const auto& s : scenarios) {
        legacy_db.rebuild(s, legacy_ws, route::RepairDrive::kPerDestination);
      }
    });
    const double legacy_wall_ms = elapsed_ms(legacy_t0);
    const auto batched_t0 = Clock::now();
    const double batched_ms = best_ms(repetitions, [&] {
      for (const auto& s : scenarios) {
        batched_db.rebuild(s, ws, route::RepairDrive::kBatchedTrees);
      }
    });
    const double batched_wall_ms = elapsed_ms(batched_t0);
    const double speedup = batched_ms > 0 ? legacy_ms / batched_ms : 0.0;
    largest_speedup = speedup;  // scales ascend; last write wins
    const double scen_per_s =
        batched_ms > 0 ? static_cast<double>(scenarios.size()) * 1000.0 / batched_ms
                       : 0.0;

    json << (first_scale ? "" : ",") << "\n    { \"name\": \"isp-" << target
         << "\", \"nodes\": " << n << ", \"links\": " << g.edge_count()
         << ", \"scenarios\": " << scenarios.size() << ",\n      \"table_mb\": "
         << static_cast<double>(batched_db.bytes()) / (1024.0 * 1024.0)
         << ", \"legacy_ms\": " << legacy_ms << ", \"batched_ms\": " << batched_ms
         << ",\n      \"repair_speedup\": " << speedup
         << ", \"scenarios_per_second\": " << scen_per_s;
    first_scale = false;
    std::cerr << "isp-" << target << " (" << n << " nodes): repair speedup "
              << speedup << "x, " << scen_per_s << " scenarios/s\n";

    // Thread-scaling curve.  Each worker owns a full warm RoutingDb, so the
    // pool memory is threads * table_mb -- priced out above 1k nodes.
    double threads_wall_ms = 0.0;
    if (n <= 1024) {
      const auto threads_t0 = Clock::now();
      std::vector<std::uint64_t> serial_digests(scenarios.size());
      {
        route::ScenarioRoutingCache cache;
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
          serial_digests[i] = table_digest(cache.tables(g, scenarios[i]));
        }
      }

      json << ",\n      \"threads\": [";
      bool first_threads = true;
      for (const std::size_t threads : {1U, 2U, 4U, 8U}) {
        if (threads_cap != 0 && threads > threads_cap) break;
        sim::SweepExecutor executor(threads);
        executor.set_telemetry(sim::SweepTelemetry{&registry, nullptr, nullptr});
        std::vector<std::uint64_t> digests(scenarios.size(), 0);
        const auto sweep = [&](std::size_t unit, sim::WorkerContext& ctx) {
          digests[unit] = table_digest(ctx.routes.tables(g, scenarios[unit]));
        };
        executor.run(scenarios.size(), sweep);  // warm worker caches + verify
        if (digests != serial_digests) {
          throw std::runtime_error("parallel sweep digests diverged at " +
                                   std::to_string(threads) + " threads");
        }
        const double ms = best_ms(repetitions, [&] {
          executor.run(scenarios.size(), sweep);
        });
        json << (first_threads ? "" : ",") << "\n        { \"threads\": " << threads
             << ", \"ms\": " << ms << ", \"speedup\": "
             << (ms > 0 ? batched_ms / ms : 0.0) << " }";
        first_threads = false;
      }
      json << "\n      ]";
      threads_wall_ms = elapsed_ms(threads_t0);
      telemetry_elapsed_ms += threads_wall_ms;
    }

    // Batch-width amortisation: a fresh cache pays the pristine build plus
    // incremental-state preparation once, then each further scenario in the
    // batch costs only its repair.  Cold by construction, measured once.
    const auto width_t0 = Clock::now();
    json << ",\n      \"batch_width\": [";
    bool first_width = true;
    for (const std::size_t width : {1U, 4U, 16U, 64U}) {
      const std::size_t w = std::min(width, scenarios.size());
      const double total = once_ms([&] {
        route::ScenarioRoutingCache cache;
        for (std::size_t i = 0; i < w; ++i) {
          if (cache.tables(g, scenarios[i]).graph().node_count() != n) {
            throw std::logic_error("bad table");
          }
        }
      });
      json << (first_width ? "" : ",") << "\n        { \"width\": " << w
           << ", \"per_scenario_ms\": " << total / static_cast<double>(w) << " }";
      first_width = false;
      if (w < width) break;  // scenario set exhausted
    }
    json << "\n      ]";

    // Per-scale attribution: phase wall times (total wall spent in a section,
    // repetitions included -- not the best-of timing above) and the RSS
    // watermark after this scale finished.
    json << ",\n      \"phase_ms\": { \"verify\": " << verify_wall_ms
         << ", \"legacy\": " << legacy_wall_ms << ", \"batched\": "
         << batched_wall_ms << ", \"threads\": " << threads_wall_ms
         << ", \"batch_width\": " << elapsed_ms(width_t0)
         << " },\n      \"peak_rss_mb\": " << peak_rss_mb() << " }";
  }

  json << "\n  ],\n  \"largest_scale_repair_speedup\": " << largest_speedup
       << ",\n  \"telemetry\": " << obs::telemetry_json(registry, telemetry_elapsed_ms)
       << ",\n  \"peak_rss_mb\": " << peak_rss_mb() << "\n}\n";

  std::cout << json.str();
  util::atomic_write_file("BENCH_backbone.json", json.str());
  std::cerr << "wrote BENCH_backbone.json (largest-scale repair speedup: "
            << largest_speedup << "x, peak RSS " << peak_rss_mb() << " MB)\n";
  return 0;
}
