// Reproduces Figure 2(b): Teleglobe stretch CCDF, 1 failure(s).
#include "figure2_common.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  const auto g = pr::topo::teleglobe();
  pr::bench::PanelConfig cfg;
  cfg.panel = "Figure 2(b)";
  cfg.topology = "Teleglobe";
  cfg.failures = 1;
  cfg.threads = pr::bench::panel_threads(argc, argv);
  return pr::bench::run_figure2_panel(g, cfg);
}
