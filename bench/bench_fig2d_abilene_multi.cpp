// Reproduces Figure 2(d): Abilene stretch CCDF, 4 failure(s).
#include "figure2_common.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  const auto g = pr::topo::abilene();
  pr::bench::PanelConfig cfg;
  cfg.panel = "Figure 2(d)";
  cfg.topology = "Abilene";
  cfg.failures = 4;
  cfg.threads = pr::bench::panel_threads(argc, argv);
  return pr::bench::run_figure2_panel(g, cfg);
}
