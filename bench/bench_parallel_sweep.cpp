// Scaling bench for the parallel sharded sweep executor: a GEANT
// multi-failure stretch enumeration (the paper-trio comparison over every
// connectivity-preserving k-failure combination) run serially and then on
// SweepExecutor pools of 1/2/4/8 threads.
//
// Every parallel run is checked bit-identical to the serial sweep before its
// timing is reported -- the executor's determinism contract is part of what
// this bench certifies.  Emits BENCH_parallel_sweep.json (also printed):
//
//   {
//     "bench": "parallel_sweep", "topology": "geant",
//     "nodes": N, "links": M, "failures_per_scenario": K,
//     "scenarios": S, "affected_pairs": P, "protocols": 3,
//     "hardware_threads": H, "repetitions": R,
//     "serial_ms": ...,
//     "results": [ { "threads": T, "ms": ..., "speedup_vs_serial": ... }, ... ],
//     "speedup_at_4_threads": ...
//   }
//
// Timings are the best of R repetitions; pool construction is excluded (the
// executor is persistent by design).
//
//   $ ./bench_parallel_sweep [failures] [scenarios] [repetitions]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/protocols.hpp"
#include "analysis/stretch.hpp"
#include "graph/connectivity.hpp"
#include "net/failure_model.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"
#include "util/atomic_file.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace pr;

double best_ms(std::size_t repetitions, const std::function<std::size_t()>& work) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t checksum = 0;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    const auto start = Clock::now();
    checksum += work();
    const auto ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
            .count());
    best = std::min(best, ns / 1e6);
  }
  if (checksum == 0) throw std::runtime_error("bench delivered nothing");
  return best;
}

void require_identical(const analysis::StretchExperimentResult& serial,
                       const analysis::StretchExperimentResult& parallel,
                       std::size_t threads) {
  const auto fail = [threads](const char* what) {
    throw std::runtime_error("parallel sweep diverged from serial at " +
                             std::to_string(threads) + " thread(s): " + what);
  };
  if (parallel.affected_pairs != serial.affected_pairs) fail("affected_pairs");
  if (parallel.protocols.size() != serial.protocols.size()) fail("protocol count");
  for (std::size_t i = 0; i < serial.protocols.size(); ++i) {
    const auto& s = serial.protocols[i];
    const auto& p = parallel.protocols[i];
    if (p.delivered != s.delivered || p.dropped != s.dropped) fail("delivery counts");
    if (p.stretches != s.stretches) fail("stretch samples");  // bit-exact doubles
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t failures = 2;
  std::size_t scenario_cap = 0;  // 0 = no cap
  std::size_t repetitions = 3;
  const bool args_ok =
      (argc <= 1 || (sim::parse_count_arg(argv[1], 16, failures) && failures > 0)) &&
      (argc <= 2 || sim::parse_count_arg(argv[2], 1000000, scenario_cap)) &&
      (argc <= 3 || (sim::parse_count_arg(argv[3], 1000, repetitions) && repetitions > 0));
  if (!args_ok) {
    std::cerr << "usage: bench_parallel_sweep [failures 1..16] "
                 "[scenario cap, 0 = none] [repetitions 1..1000]\n";
    return 1;
  }

  const graph::Graph g = topo::geant();
  const analysis::ProtocolSuite suite(g);
  const auto protocols = suite.paper_trio();

  // Enumerate every connectivity-preserving k-failure combination (the
  // regime of the paper's guarantee); cap only if the caller asked to.
  std::vector<graph::EdgeSet> scenarios;
  for (auto& candidate : net::enumerate_failures(g, failures)) {
    if (scenario_cap != 0 && scenarios.size() == scenario_cap) break;
    if (graph::is_connected(g, &candidate)) scenarios.push_back(std::move(candidate));
  }
  if (scenarios.empty()) throw std::runtime_error("no connected failure scenarios");

  const auto serial_result = analysis::run_stretch_experiment(g, scenarios, protocols);
  const double serial_ms = best_ms(repetitions, [&] {
    return analysis::run_stretch_experiment(g, scenarios, protocols).protocols[0].delivered;
  });

  const unsigned hardware = std::thread::hardware_concurrency();
  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"parallel_sweep\",\n"
       << "  \"topology\": \"geant\",\n"
       << "  \"nodes\": " << g.node_count() << ",\n"
       << "  \"links\": " << g.edge_count() << ",\n"
       << "  \"failures_per_scenario\": " << failures << ",\n"
       << "  \"scenarios\": " << scenarios.size() << ",\n"
       << "  \"affected_pairs\": " << serial_result.affected_pairs << ",\n"
       << "  \"protocols\": " << protocols.size() << ",\n"
       << "  \"hardware_threads\": " << hardware << ",\n"
       << "  \"repetitions\": " << repetitions << ",\n"
       << "  \"serial_ms\": " << serial_ms << ",\n"
       << "  \"results\": [";

  double speedup_at_4 = 0.0;
  bool first = true;
  for (const std::size_t threads : {1U, 2U, 4U, 8U}) {
    sim::SweepExecutor executor(threads);
    const auto parallel_result =
        analysis::run_stretch_experiment(g, scenarios, protocols, executor);
    require_identical(serial_result, parallel_result, threads);

    const double ms = best_ms(repetitions, [&] {
      return analysis::run_stretch_experiment(g, scenarios, protocols, executor)
          .protocols[0]
          .delivered;
    });
    const double speedup = serial_ms / ms;
    if (threads == 4) speedup_at_4 = speedup;
    json << (first ? "" : ",") << "\n    { \"threads\": " << threads
         << ", \"ms\": " << ms << ", \"speedup_vs_serial\": " << speedup << " }";
    first = false;
  }
  json << "\n  ],\n"
       << "  \"speedup_at_4_threads\": " << speedup_at_4 << "\n}\n";

  std::cout << json.str();
  util::atomic_write_file("BENCH_parallel_sweep.json", json.str());
  std::cerr << "wrote BENCH_parallel_sweep.json (hardware threads: " << hardware
            << ")\n";
  return 0;
}
