// Reproduces Figure 2(f): Geant stretch CCDF, 16 failure(s).
#include "figure2_common.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  const auto g = pr::topo::geant();
  pr::bench::PanelConfig cfg;
  cfg.panel = "Figure 2(f)";
  cfg.topology = "Geant";
  cfg.failures = 16;
  cfg.threads = pr::bench::panel_threads(argc, argv);
  return pr::bench::run_figure2_panel(g, cfg);
}
