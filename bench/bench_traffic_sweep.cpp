// Congestion-under-failure sweep: the traffic-engineering comparison.
//
// For each evaluation topology (Abilene / Teleglobe / GEANT) the bench builds
// a degree-gravity demand matrix carrying 1M packets per second, sizes a
// uniform capacity plan so the busiest pristine interface runs at 60%
// utilization, then sweeps every single-link failure and every dual-link
// combination under Packet Re-cycling, Loop-Free Alternates and IGP
// reconvergence.  Each (scenario, protocol) cell routes the full demand
// matrix with demand-weighted load accumulation and is priced against the
// plan: max link utilization, overloaded links, and delivered / lost /
// stranded traffic volume.  Sweeps run on the parallel executor; the Abilene
// single-link sweep is first checked bit-identical to the serial reference
// (the determinism contract is part of what this bench certifies).
//
// Emits BENCH_traffic_sweep.json (also printed):
//
//   { "bench": "traffic_sweep", "total_demand_pps": ..., ...,
//     "topologies": [ { "topology": "abilene", ..., "sweeps": [
//       { "failures": 1, "scenarios": S, "protocols": [
//         { "protocol": "Packet Re-cycling", "worst_max_utilization": ...,
//           "overloaded_links": ..., "stranded_pps": ..., ... }, ... ] }, ... ] } ] }
//
//   $ ./bench_traffic_sweep [threads] [dual-scenario cap, 0 = none]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/protocols.hpp"
#include "analysis/traffic.hpp"
#include "net/failure_model.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"
#include "traffic/capacity.hpp"
#include "traffic/congestion.hpp"
#include "traffic/demand.hpp"

namespace {

using namespace pr;
using Clock = std::chrono::steady_clock;

constexpr double kTotalDemandPps = 1e6;  // a million packets/s across the network
constexpr double kBaselineUtilization = 0.6;  // headroom on the pristine busiest link

/// Demand-weighted per-dart load of the pristine (no failures) network under
/// plain shortest-path forwarding: the baseline the capacity plan is sized
/// against.
traffic::LoadMap pristine_load(const graph::Graph& g,
                               const analysis::ProtocolSuite& suite,
                               const traffic::TrafficMatrix& demand) {
  // The exact work-list the sweep will route, so capacity is sized against
  // the same flows.
  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  analysis::collect_demand_flows(demand, flows, demands);
  net::Network network(g);
  const auto spf = suite.spf().make(network);
  traffic::LoadMap load;
  sim::BatchResult batch;
  sim::route_batch(network, *spf, flows, demands, load, sim::TraceMode::kStats, batch);
  return load;
}

void require_identical(const analysis::TrafficExperimentResult& serial,
                       const analysis::TrafficExperimentResult& parallel) {
  const auto fail = [](const char* what) {
    throw std::runtime_error(std::string("parallel traffic sweep diverged from "
                                         "serial: ") +
                             what);
  };
  if (parallel.protocols.size() != serial.protocols.size()) fail("protocol count");
  for (std::size_t i = 0; i < serial.protocols.size(); ++i) {
    if (parallel.protocols[i].per_scenario != serial.protocols[i].per_scenario) {
      fail("per-scenario metrics");  // bit-exact doubles
    }
    if (parallel.protocols[i].total_load != serial.protocols[i].total_load) {
      fail("total load map");
    }
  }
}

void emit_protocols(std::ostringstream& json, std::ostream& table,
                    const analysis::TrafficExperimentResult& result) {
  bool first = true;
  for (const auto& p : result.protocols) {
    const traffic::CongestionSummary s = p.summary();
    json << (first ? "" : ",") << "\n          { \"protocol\": \"" << p.name << "\""
         << ", \"worst_max_utilization\": " << s.worst_max_utilization
         << ", \"mean_max_utilization\": " << s.mean_max_utilization
         << ", \"overloaded_links\": " << s.overloaded_links
         << ", \"overloaded_scenarios\": " << s.overloaded_scenarios
         << ", \"offered_pps\": " << s.offered_pps
         << ", \"delivered_pps\": " << s.delivered_pps
         << ", \"lost_pps\": " << s.lost_pps
         << ", \"stranded_pps\": " << s.stranded_pps << " }";
    first = false;

    table << "  " << std::left << std::setw(26) << p.name << std::right << std::fixed
          << std::setprecision(3) << std::setw(10) << s.worst_max_utilization
          << std::setw(10) << s.mean_max_utilization << std::setw(9)
          << s.overloaded_links << std::setprecision(0) << std::setw(14)
          << s.lost_pps << std::setw(14) << s.stranded_pps << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 0;
  std::size_t dual_cap = 0;  // 0 = no cap
  try {
    threads = sim::threads_from_arg(argc, argv, 1);
    if (argc > 2 && !sim::parse_count_arg(argv[2], 1000000, dual_cap)) {
      throw std::invalid_argument("bad dual-scenario cap");
    }
  } catch (const std::exception& ex) {
    std::cerr << "usage: bench_traffic_sweep [threads] [dual-scenario cap, 0 = none]\n"
              << ex.what() << "\n";
    return 1;
  }

  sim::SweepExecutor executor(threads);
  std::cout << "traffic sweep: gravity demand " << kTotalDemandPps
            << " pps, capacity sized for " << kBaselineUtilization
            << " pristine peak utilization, " << executor.thread_count()
            << " sweep thread(s)\n\n";

  struct Topo {
    const char* name;
    graph::Graph g;
  };
  std::vector<Topo> topologies;
  topologies.push_back({"abilene", topo::abilene()});
  topologies.push_back({"teleglobe", topo::teleglobe()});
  topologies.push_back({"geant", topo::geant()});

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"traffic_sweep\",\n"
       << "  \"total_demand_pps\": " << kTotalDemandPps << ",\n"
       << "  \"baseline_utilization\": " << kBaselineUtilization << ",\n"
       << "  \"demand_model\": \"gravity-degree\",\n"
       << "  \"threads\": " << executor.thread_count() << ",\n"
       << "  \"dual_scenario_cap\": " << dual_cap << ",\n"
       << "  \"topologies\": [";

  bool first_topo = true;
  for (const Topo& t : topologies) {
    const graph::Graph& g = t.g;
    const analysis::ProtocolSuite suite(g);
    const std::vector<analysis::NamedFactory> protocols = {
        suite.pr(), suite.lfa(), suite.reconvergence()};

    const traffic::TrafficMatrix demand =
        traffic::gravity_demand(g, kTotalDemandPps, traffic::GravityMass::kDegree);
    const traffic::LoadMap baseline = pristine_load(g, suite, demand);
    double peak = 0.0;
    for (double v : baseline.darts()) peak = std::max(peak, v);
    const traffic::CapacityPlan plan =
        traffic::CapacityPlan::uniform(g, peak / kBaselineUtilization);

    std::cout << t.name << ": " << g.node_count() << " nodes, " << g.edge_count()
              << " links, " << demand.pair_count() << " demand pairs, per-link capacity "
              << std::fixed << std::setprecision(0) << plan.capacity_pps(0)
              << " pps\n";

    json << (first_topo ? "" : ",") << "\n    { \"topology\": \"" << t.name
         << "\", \"nodes\": " << g.node_count() << ", \"links\": " << g.edge_count()
         << ", \"demand_pairs\": " << demand.pair_count()
         << ", \"capacity_pps_per_link\": " << plan.capacity_pps(0)
         << ",\n      \"sweeps\": [";
    first_topo = false;

    struct Sweep {
      std::size_t failures;
      std::vector<graph::EdgeSet> scenarios;
    };
    std::vector<Sweep> sweeps;
    sweeps.push_back({1, net::all_single_failures(g)});
    {
      // Every dual-link combination, disconnecting ones included (that is
      // where stranded traffic comes from); cap only if the caller asked.
      std::vector<graph::EdgeSet> duals = net::enumerate_failures(g, 2);
      if (dual_cap != 0 && duals.size() > dual_cap) duals.resize(dual_cap);
      sweeps.push_back({2, std::move(duals)});
    }

    bool first_sweep = true;
    for (const Sweep& sweep : sweeps) {
      const auto start = Clock::now();
      const auto result = analysis::run_traffic_experiment(
          g, demand, plan, sweep.scenarios, protocols, executor);
      const double ms =
          static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                  Clock::now() - start)
                                  .count()) /
          1e3;

      // Determinism guard on the cheapest sweep: the executor result must be
      // bit-identical to the serial reference path.
      if (sweep.failures == 1 && t.name == std::string("abilene")) {
        require_identical(
            analysis::run_traffic_experiment(g, demand, plan, sweep.scenarios,
                                             protocols),
            result);
      }

      std::cout << " " << sweep.failures << "-link sweep, " << sweep.scenarios.size()
                << " scenarios (" << std::fixed << std::setprecision(0) << ms
                << " ms):\n  " << std::left << std::setw(26) << "protocol" << std::right
                << std::setw(10) << "worst-U" << std::setw(10) << "mean-U"
                << std::setw(9) << "overld" << std::setw(14) << "lost-pps"
                << std::setw(14) << "stranded-pps" << "\n";

      json << (first_sweep ? "" : ",") << "\n        { \"failures\": "
           << sweep.failures << ", \"scenarios\": " << sweep.scenarios.size()
           << ", \"flows_per_scenario\": " << result.flows_per_scenario
           << ", \"ms\": " << ms << ",\n          \"protocols\": [";
      emit_protocols(json, std::cout, result);
      json << "\n        ] }";
      first_sweep = false;
      std::cout << "\n";
    }
    json << "\n      ] }";
  }
  json << "\n  ]\n}\n";

  std::ofstream out("BENCH_traffic_sweep.json");
  out << json.str();
  std::cerr << "wrote BENCH_traffic_sweep.json\n";
  return 0;
}
