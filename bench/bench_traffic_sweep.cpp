// Congestion-under-failure sweep: the traffic-engineering comparison.
//
// For each evaluation topology (Abilene / Teleglobe / GEANT) the bench builds
// a degree-gravity demand matrix carrying 1M packets per second, sizes a
// uniform capacity plan so the busiest pristine interface runs at 60%
// utilization, then sweeps every single-link failure and every dual-link
// combination under Packet Re-cycling, Loop-Free Alternates and IGP
// reconvergence.  Each (scenario, protocol) cell routes the full demand
// matrix with demand-weighted load accumulation and is priced against the
// plan: max link utilization, overloaded links, and delivered / lost /
// stranded traffic volume.  Sweeps run on the parallel executor; the Abilene
// single-link sweep is first checked bit-identical to the serial reference
// (the determinism contract is part of what this bench certifies).
//
// Every sweep now runs twice: once through the full re-route oracle and once
// through the affected-flow incremental core (pristine FlowIncidenceIndex +
// canonical-order replay), asserting the two bit-identical before reporting
// the timing ratio and the affected-flow fraction the incremental path
// actually re-routed.
//
// Emits BENCH_traffic_sweep.json (also printed); schema is additive over the
// pre-incremental version ("ms" is still the full-re-route sweep time):
//
//   { "bench": "traffic_sweep", "total_demand_pps": ..., ...,
//     "topologies": [ { "topology": "abilene", ..., "sweeps": [
//       { "failures": 1, "scenarios": S, "ms": ..., "ms_incremental": ...,
//         "speedup_incremental": ..., "affected_flow_fraction": ...,
//         "protocols": [
//         { "protocol": "Packet Re-cycling", "worst_max_utilization": ...,
//           "overloaded_links": ..., "stranded_pps": ...,
//           "rerouted_flows": ..., ... }, ... ] }, ... ] } ],
//     "telemetry": { "cache_hit_rate": ..., "affected_flow_fraction": ...,
//       "counters": {...}, "phases": {...}, "per_worker": [...] } }
//
//   $ ./bench_traffic_sweep [threads] [dual-scenario cap, 0 = none]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/protocols.hpp"
#include "analysis/traffic.hpp"
#include "net/failure_model.hpp"
#include "obs/telemetry.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"
#include "traffic/capacity.hpp"
#include "traffic/congestion.hpp"
#include "traffic/demand.hpp"
#include "util/atomic_file.hpp"

namespace {

using namespace pr;
using Clock = std::chrono::steady_clock;

constexpr double kTotalDemandPps = 1e6;  // a million packets/s across the network
constexpr double kBaselineUtilization = 0.6;  // headroom on the pristine busiest link

/// Demand-weighted per-dart load of the pristine (no failures) network under
/// plain shortest-path forwarding: the baseline the capacity plan is sized
/// against.
traffic::LoadMap pristine_load(const graph::Graph& g,
                               const analysis::ProtocolSuite& suite,
                               const traffic::TrafficMatrix& demand) {
  // The exact work-list the sweep will route, so capacity is sized against
  // the same flows.
  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  analysis::collect_demand_flows(demand, flows, demands);
  net::Network network(g);
  const auto spf = suite.spf().make(network);
  traffic::LoadMap load;
  sim::BatchResult batch;
  sim::route_batch(network, *spf, flows, demands, load, sim::TraceMode::kStats, batch);
  return load;
}

void require_identical(const analysis::TrafficExperimentResult& reference,
                       const analysis::TrafficExperimentResult& candidate,
                       const char* label) {
  const auto fail = [label](const char* what) {
    throw std::runtime_error(std::string(label) + ": " + what);
  };
  if (candidate.protocols.size() != reference.protocols.size()) {
    fail("protocol count");
  }
  for (std::size_t i = 0; i < reference.protocols.size(); ++i) {
    if (candidate.protocols[i].per_scenario != reference.protocols[i].per_scenario) {
      fail("per-scenario metrics");  // bit-exact doubles
    }
    if (candidate.protocols[i].total_load != reference.protocols[i].total_load) {
      fail("total load map");
    }
  }
}

void emit_protocols(std::ostringstream& json, std::ostream& table,
                    const analysis::TrafficExperimentResult& result) {
  bool first = true;
  for (const auto& p : result.protocols) {
    const traffic::CongestionSummary s = p.summary();
    json << (first ? "" : ",") << "\n          { \"protocol\": \"" << p.name << "\""
         << ", \"worst_max_utilization\": " << s.worst_max_utilization
         << ", \"mean_max_utilization\": " << s.mean_max_utilization
         << ", \"overloaded_links\": " << s.overloaded_links
         << ", \"overloaded_scenarios\": " << s.overloaded_scenarios
         << ", \"offered_pps\": " << s.offered_pps
         << ", \"delivered_pps\": " << s.delivered_pps
         << ", \"lost_pps\": " << s.lost_pps
         << ", \"stranded_pps\": " << s.stranded_pps
         << ", \"rerouted_flows\": " << p.rerouted_flows
         << ", \"affected_fraction\": " << result.rerouted_fraction(p) << " }";
    first = false;

    table << "  " << std::left << std::setw(26) << p.name << std::right << std::fixed
          << std::setprecision(3) << std::setw(10) << s.worst_max_utilization
          << std::setw(10) << s.mean_max_utilization << std::setw(9)
          << s.overloaded_links << std::setprecision(0) << std::setw(14)
          << s.lost_pps << std::setw(14) << s.stranded_pps << std::setprecision(3)
          << std::setw(10) << result.rerouted_fraction(p) << "\n";
  }
}

double elapsed_ms(Clock::time_point start) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                 Clock::now() - start)
                                 .count()) /
         1e3;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 0;
  std::size_t dual_cap = 0;  // 0 = no cap
  try {
    threads = sim::threads_from_arg(argc, argv, 1);
    if (argc > 2 && !sim::parse_count_arg(argv[2], 1000000, dual_cap)) {
      throw std::invalid_argument("bad dual-scenario cap");
    }
  } catch (const std::exception& ex) {
    std::cerr << "usage: bench_traffic_sweep [threads] [dual-scenario cap, 0 = none]\n"
              << ex.what() << "\n";
    return 1;
  }

  sim::SweepExecutor executor(threads);
  // Telemetry rides along on every sweep (warmups and serial-reference runs
  // included): route-cache hit rate, affected-flow fractions, forwarding hop
  // counts, and per-worker utilization all land in the JSON.
  obs::Registry registry;
  executor.set_telemetry(sim::SweepTelemetry{&registry, nullptr, nullptr});
  const auto bench_t0 = Clock::now();
  std::cout << "traffic sweep: gravity demand " << kTotalDemandPps
            << " pps, capacity sized for " << kBaselineUtilization
            << " pristine peak utilization, " << executor.thread_count()
            << " sweep thread(s)\n\n";

  struct Topo {
    const char* name;
    graph::Graph g;
  };
  std::vector<Topo> topologies;
  topologies.push_back({"abilene", topo::abilene()});
  topologies.push_back({"teleglobe", topo::teleglobe()});
  topologies.push_back({"geant", topo::geant()});

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"traffic_sweep\",\n"
       << "  \"total_demand_pps\": " << kTotalDemandPps << ",\n"
       << "  \"baseline_utilization\": " << kBaselineUtilization << ",\n"
       << "  \"demand_model\": \"gravity-degree\",\n"
       << "  \"threads\": " << executor.thread_count() << ",\n"
       << "  \"dual_scenario_cap\": " << dual_cap << ",\n"
       << "  \"topologies\": [";

  bool first_topo = true;
  for (const Topo& t : topologies) {
    const graph::Graph& g = t.g;
    const analysis::ProtocolSuite suite(g);
    const std::vector<analysis::NamedFactory> protocols = {
        suite.pr(), suite.lfa(), suite.reconvergence()};

    const traffic::TrafficMatrix demand =
        traffic::gravity_demand(g, kTotalDemandPps, traffic::GravityMass::kDegree);
    const traffic::LoadMap baseline = pristine_load(g, suite, demand);
    double peak = 0.0;
    for (double v : baseline.darts()) peak = std::max(peak, v);
    const traffic::CapacityPlan plan =
        traffic::CapacityPlan::uniform(g, peak / kBaselineUtilization);

    std::cout << t.name << ": " << g.node_count() << " nodes, " << g.edge_count()
              << " links, " << demand.pair_count() << " demand pairs, per-link capacity "
              << std::fixed << std::setprecision(0) << plan.capacity_pps(0)
              << " pps\n";

    json << (first_topo ? "" : ",") << "\n    { \"topology\": \"" << t.name
         << "\", \"nodes\": " << g.node_count() << ", \"links\": " << g.edge_count()
         << ", \"demand_pairs\": " << demand.pair_count()
         << ", \"capacity_pps_per_link\": " << plan.capacity_pps(0)
         << ",\n      \"sweeps\": [";
    first_topo = false;

    struct Sweep {
      std::size_t failures;
      std::vector<graph::EdgeSet> scenarios;
    };
    std::vector<Sweep> sweeps;
    sweeps.push_back({1, net::all_single_failures(g)});
    {
      // Every dual-link combination, disconnecting ones included (that is
      // where stranded traffic comes from); cap only if the caller asked.
      std::vector<graph::EdgeSet> duals = net::enumerate_failures(g, 2);
      if (dual_cap != 0 && duals.size() > dual_cap) duals.resize(dual_cap);
      sweeps.push_back({2, std::move(duals)});
    }

    // Untimed warmup of both modes on the cheapest sweep: the executor's
    // per-worker state (pristine ScenarioRoutingCache builds, batch / load /
    // incidence buffer growth) is paid here, once, so the timed comparison
    // below measures the algorithmic difference rather than which mode ran
    // first on cold workers.
    (void)analysis::run_traffic_experiment(
        g, demand, plan, sweeps.front().scenarios, protocols, executor,
        analysis::TrafficSweepMode::kFullReroute);
    (void)analysis::run_traffic_experiment(
        g, demand, plan, sweeps.front().scenarios, protocols, executor,
        analysis::TrafficSweepMode::kIncremental);

    bool first_sweep = true;
    for (const Sweep& sweep : sweeps) {
      const auto full_start = Clock::now();
      const auto full = analysis::run_traffic_experiment(
          g, demand, plan, sweep.scenarios, protocols, executor,
          analysis::TrafficSweepMode::kFullReroute);
      const double ms_full = elapsed_ms(full_start);

      const auto inc_start = Clock::now();
      const auto result = analysis::run_traffic_experiment(
          g, demand, plan, sweep.scenarios, protocols, executor,
          analysis::TrafficSweepMode::kIncremental);
      const double ms_inc = elapsed_ms(inc_start);

      // The incremental core must reproduce the oracle bit for bit on every
      // sweep -- the speedup below is only worth reporting if it does.
      require_identical(full, result,
                        "incremental traffic sweep diverged from the full "
                        "re-route oracle");

      // Determinism guard on the cheapest sweep: the executor result must be
      // bit-identical to the serial reference path.
      if (sweep.failures == 1 && t.name == std::string("abilene")) {
        require_identical(
            analysis::run_traffic_experiment(g, demand, plan, sweep.scenarios,
                                             protocols),
            result, "parallel traffic sweep diverged from serial");
      }

      double affected_fraction = 0.0;
      for (const auto& p : result.protocols) {
        affected_fraction += result.rerouted_fraction(p);
      }
      affected_fraction /= static_cast<double>(result.protocols.size());
      const double speedup = ms_inc > 0.0 ? ms_full / ms_inc : 0.0;

      std::cout << " " << sweep.failures << "-link sweep, " << sweep.scenarios.size()
                << " scenarios: full " << std::fixed << std::setprecision(0)
                << ms_full << " ms, incremental " << ms_inc << " ms ("
                << std::setprecision(2) << speedup << "x, affected fraction "
                << std::setprecision(3) << affected_fraction << "):\n  "
                << std::left << std::setw(26) << "protocol" << std::right
                << std::setw(10) << "worst-U" << std::setw(10) << "mean-U"
                << std::setw(9) << "overld" << std::setw(14) << "lost-pps"
                << std::setw(14) << "stranded-pps" << std::setw(10) << "affected"
                << "\n";

      json << (first_sweep ? "" : ",") << "\n        { \"failures\": "
           << sweep.failures << ", \"scenarios\": " << sweep.scenarios.size()
           << ", \"flows_per_scenario\": " << result.flows_per_scenario
           << ", \"ms\": " << ms_full << ", \"ms_incremental\": " << ms_inc
           << ", \"speedup_incremental\": " << speedup
           << ", \"affected_flow_fraction\": " << affected_fraction
           << ",\n          \"protocols\": [";
      emit_protocols(json, std::cout, result);
      json << "\n        ] }";
      first_sweep = false;
      std::cout << "\n";
    }
    json << "\n      ] }";
  }
  json << "\n  ],\n  \"telemetry\": "
       << obs::telemetry_json(registry, elapsed_ms(bench_t0)) << "\n}\n";

  util::atomic_write_file("BENCH_traffic_sweep.json", json.str());
  std::cerr << "wrote BENCH_traffic_sweep.json\n";
  return 0;
}
