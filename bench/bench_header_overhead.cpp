// Experiment E8 (Section 6 in-text claims): per-packet header overhead.
//
// PR needs 1 PR bit + ceil(log2(d+1)) DD bits, where d is the hop diameter;
// the paper proposes carrying them in DSCP pool 2 (4 free bits).  FCP instead
// carries the list of failed links the packet has learned, which grows
// without bound; this bench prices both on every bundled topology.
#include <iomanip>
#include <iostream>

#include "graph/dijkstra.hpp"
#include "net/header_codec.hpp"
#include "route/routing_db.hpp"
#include "topo/topologies.hpp"

int main() {
  using namespace pr;
  std::cout << "Per-packet header overhead: Packet Re-cycling vs FCP\n\n";
  std::cout << std::left << std::setw(12) << "topology" << std::setw(8) << "nodes"
            << std::setw(8) << "links" << std::setw(10) << "hop-diam" << std::setw(10)
            << "PR bits" << std::setw(12) << "fits-DSCP" << std::setw(14)
            << "FCP@1fail" << std::setw(14) << "FCP@4fails" << "FCP@16fails\n";

  const std::pair<const char*, graph::Graph> topologies[] = {
      {"figure1", topo::figure1()},
      {"abilene", topo::abilene()},
      {"teleglobe", topo::teleglobe()},
      {"geant", topo::geant()},
  };
  for (const auto& [name, g] : topologies) {
    const auto d = graph::hop_diameter(g);
    const auto layout = net::PrHeaderLayout::for_hop_diameter(d);
    std::cout << std::left << std::setw(12) << name << std::setw(8) << g.node_count()
              << std::setw(8) << g.edge_count() << std::setw(10) << d << std::setw(10)
              << layout.total_bits() << std::setw(12)
              << (layout.fits_dscp_pool2() ? "yes" : "no") << std::setw(14)
              << net::fcp_header_bits(1, g.edge_count()) << std::setw(14)
              << net::fcp_header_bits(4, g.edge_count())
              << net::fcp_header_bits(16, g.edge_count()) << "\n";
  }

  std::cout << "\nDD discriminator alternatives (ablation A4), weighted vs hops:\n";
  std::cout << std::left << std::setw(12) << "topology" << std::setw(14) << "max-dd-hops"
            << std::setw(14) << "bits(hops)" << std::setw(16) << "max-dd-weighted"
            << "bits(weighted)\n";
  for (const auto& [name, g] : topologies) {
    const route::RoutingDb hops(g, nullptr, route::DiscriminatorKind::kHops);
    const route::RoutingDb weighted(g, nullptr, route::DiscriminatorKind::kWeightedCost);
    std::cout << std::left << std::setw(12) << name << std::setw(14)
              << hops.max_discriminator() << std::setw(14)
              << 1 + net::bits_for_value(hops.max_discriminator()) << std::setw(16)
              << weighted.max_discriminator()
              << 1 + net::bits_for_value(weighted.max_discriminator()) << "\n";
  }

  std::cout << "\nDSCP pool-2 codepoint example (Abilene, PR in cycle-following mode,"
               " dd=3):\n";
  const auto layout = net::PrHeaderLayout::for_hop_diameter(5);
  const auto code = net::encode_dscp(layout, true, 3);
  std::cout << "  codepoint = 0b";
  for (int b = 5; b >= 0; --b) std::cout << ((code >> b) & 1);
  const auto decoded = net::decode_dscp(layout, code);
  std::cout << "  (decodes to pr=" << decoded.pr_bit << " dd=" << decoded.dd << ")\n";
  return 0;
}
