// Ablation A4: the two distance-discriminator candidates from Section 4.3 --
// hop count versus weighted path cost -- compared on header bits, stretch and
// delivery across single and multi failure workloads.
//
// With unit link weights the two coincide, so this bench runs on a weighted
// variant of GEANT (metro links cost 1, long-haul links cost 3) and on the
// Figure 1 network whose paper-pinned weights already differ from hop counts.
#include <iomanip>
#include <iostream>

#include "analysis/protocols.hpp"
#include "analysis/stretch.hpp"
#include "graph/connectivity.hpp"
#include "net/failure_model.hpp"
#include "net/header_codec.hpp"
#include "topo/topologies.hpp"

namespace {

pr::graph::Graph weighted_geant() {
  auto g = pr::topo::geant();
  // Long-haul links (those leaving the DE/FR/UK/NL/IT core) cost 3.
  const auto core = [&g](pr::graph::NodeId v) {
    const auto& l = g.node_label(v);
    return l == "DE" || l == "FR" || l == "UK" || l == "NL" || l == "IT";
  };
  for (pr::graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!core(g.edge_u(e)) && !core(g.edge_v(e))) g.set_edge_weight(e, 3.0);
  }
  return g;
}

}  // namespace

int main() {
  using namespace pr;

  for (const auto& [name, g] :
       {std::pair{"figure1", topo::figure1()}, {"geant-weighted", weighted_geant()}}) {
    std::cout << "== " << name << " ==\n";
    std::cout << std::left << std::setw(12) << "dd-kind" << std::setw(10) << "max-dd"
              << std::setw(12) << "header-bits" << std::setw(14) << "mean-stretch"
              << std::setw(13) << "max-stretch" << "drops (single failures)\n";

    for (const auto kind :
         {route::DiscriminatorKind::kHops, route::DiscriminatorKind::kWeightedCost}) {
      const analysis::ProtocolSuite suite(g, embed::EmbedOptions{}, kind);
      const auto scenarios = net::all_single_failures(g);
      const auto result = analysis::run_stretch_experiment(g, scenarios, {suite.pr()});
      const auto& p = result.protocols[0];
      const auto max_dd = suite.routes().max_discriminator();
      std::cout << std::left << std::setw(12)
                << (kind == route::DiscriminatorKind::kHops ? "hops" : "weighted")
                << std::setw(10) << max_dd << std::setw(12)
                << 1 + net::bits_for_value(max_dd) << std::setw(14) << std::fixed
                << std::setprecision(3) << p.mean_finite_stretch() << std::setw(13)
                << p.max_finite_stretch() << p.dropped << "\n";
    }

    // Multi-failure delivery check: both discriminators must stay loop-free.
    // Enumerate-and-filter keeps small graphs exhaustive.
    const std::size_t k = std::min<std::size_t>(4, g.edge_count() / 4);
    std::vector<graph::EdgeSet> multi;
    if (g.edge_count() <= 12) {
      for (auto& candidate : net::enumerate_failures(g, k)) {
        if (graph::is_connected(g, &candidate)) multi.push_back(std::move(candidate));
      }
    } else {
      graph::Rng rng(0xA4);
      multi = net::sample_connected_failures(g, k, 60, rng);
    }
    for (const auto kind :
         {route::DiscriminatorKind::kHops, route::DiscriminatorKind::kWeightedCost}) {
      const analysis::ProtocolSuite suite(g, embed::EmbedOptions{}, kind);
      const auto result = analysis::run_stretch_experiment(g, multi, {suite.pr()});
      std::cout << "  multi-failure (k=" << k << ", "
                << (kind == route::DiscriminatorKind::kHops ? "hops" : "weighted")
                << "): delivered " << result.protocols[0].delivered << ", dropped "
                << result.protocols[0].dropped << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "Hop-count discriminators need fewer header bits (log2 of the hop\n"
               "diameter); weighted discriminators grow with the cost diameter but\n"
               "follow the IGP metric exactly.  Both terminate.\n";
  return 0;
}
