// Ablation A6: how do PR's costs scale with network size?
//
// Synthetic two-tier ISPs (planar, 2-edge-connected by construction) from 15
// to 150 nodes.  For each size: embedding cost, header bits, per-router
// state, and the single-failure stretch of the paper trio over sampled
// failures.  The punchline the paper predicts: header bits grow as
// log2(diameter), state stays tiny, and stretch stays flat-ish because
// backup cycles are local.
#include <algorithm>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "analysis/protocols.hpp"
#include "analysis/stats.hpp"
#include "graph/dijkstra.hpp"
#include "net/failure_model.hpp"
#include "net/header_codec.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  using namespace pr;
  using Clock = std::chrono::steady_clock;

  // `bench_scaling [threads]` (falls back to PR_SWEEP_THREADS; 0 = hardware):
  // the per-size stretch sweeps shard over the executor and stay
  // bit-identical to the serial path at any thread count.
  sim::SweepExecutor executor(sim::threads_from_arg(argc, argv, 1));

  std::cout << "Synthetic two-tier ISPs, 25 sampled single failures per size, "
               "seed 0xA6, sweep on "
            << executor.thread_count() << " thread(s)\n\n";
  std::cout << std::left << std::setw(8) << "nodes" << std::setw(8) << "links"
            << std::setw(7) << "diam" << std::setw(9) << "dd-bits" << std::setw(12)
            << "embed-ms" << std::setw(14) << "tables-bytes" << std::setw(34)
            << "PR stretch (mean | p99 | max)" << "reconv-mean\n";

  for (const std::size_t core : {10U, 20U, 40U, 70U, 100U}) {
    graph::Rng topo_rng(0xA6);
    const auto g = topo::synthetic_isp(core, core / 2, topo_rng);

    const auto start = Clock::now();
    const analysis::ProtocolSuite suite(g);
    const auto embed_ms = std::chrono::duration_cast<std::chrono::microseconds>(
                              Clock::now() - start)
                              .count() /
                          1000.0;

    graph::Rng rng(0xA6);
    std::vector<graph::EdgeSet> scenarios;
    {
      auto all = net::all_single_failures(g);
      std::shuffle(all.begin(), all.end(), rng.engine());
      all.resize(std::min<std::size_t>(25, all.size()));
      scenarios = std::move(all);
    }
    const auto result =
        analysis::run_stretch_experiment(g, scenarios, suite.paper_trio(), executor);
    const auto& pr_res = result.protocols[2];
    const auto summary = analysis::summarize(pr_res.stretches);

    const auto layout =
        net::PrHeaderLayout::for_hop_diameter(suite.routes().max_discriminator());
    // Per-router: DD column + average cycle-following table.
    std::size_t cyc = 0;
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      cyc += suite.cycle_table().memory_bytes_per_router(v);
    }
    const std::size_t state =
        g.node_count() * sizeof(std::uint32_t) + cyc / g.node_count();

    std::ostringstream stretch_cell;
    stretch_cell << std::fixed << std::setprecision(2) << summary.mean << " | "
                 << summary.p99 << " | " << summary.max;
    std::cout << std::left << std::setw(8) << g.node_count() << std::setw(8)
              << g.edge_count() << std::setw(7) << graph::hop_diameter(g)
              << std::setw(9) << layout.total_bits() << std::setw(12) << std::fixed
              << std::setprecision(2) << embed_ms << std::setw(14) << state
              << std::setw(34) << stretch_cell.str() << std::setprecision(2)
              << result.protocols[0].mean_finite_stretch() << "\n";

    if (pr_res.dropped != 0) {
      std::cout << "  WARNING: " << pr_res.dropped
                << " drops on a planar topology -- investigate!\n";
    }
  }
  std::cout << "\nHeader bits track log2(diameter); per-router PR state stays in\n"
               "the hundreds of bytes; mean stretch is scale-stable because the\n"
               "complementary cycles used for repair are local structures.\n";
  return 0;
}
