// Ablation A2: repair coverage -- what fraction of recoverable packets does
// each scheme deliver as the number of simultaneous failures grows?
//
// Compares PR (full DD protocol), PR's 1-bit variant (Section 4.2), LFA
// (RFC 5286), FCP, and plain SPF on Abilene and GEANT.  Scenarios are
// sampled WITHOUT a connectivity filter: "dropped-partitioned" packets had
// no possible route; "dropped-reachable" are genuine protocol coverage gaps.
// PR's guarantee says its dropped-reachable column must be zero on these
// planar topologies.
#include <iostream>

#include "analysis/coverage.hpp"
#include "analysis/protocols.hpp"
#include "analysis/report.hpp"
#include "net/failure_model.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  using namespace pr;
  const std::uint64_t seed = 0xC0FE;
  const std::size_t scenarios_per_k = 150;
  const std::size_t threads = sim::threads_from_arg(argc, argv, 1);
  sim::SweepExecutor executor(threads);

  for (const auto& [name, g] :
       {std::pair{"abilene", topo::abilene()}, {"geant", topo::geant()}}) {
    const analysis::ProtocolSuite suite(g);
    const std::vector<analysis::NamedFactory> protocols = {
        suite.pr(), suite.pr_single_bit(), suite.lfa(), suite.fcp(), suite.spf()};

    std::cout << "== " << name << " (" << g.node_count() << " nodes, "
              << g.edge_count() << " links), " << scenarios_per_k
              << " scenarios per failure count, seed " << std::hex << seed << std::dec
              << " ==\n";
    for (std::size_t k : {1U, 2U, 4U, 8U}) {
      if (k >= g.edge_count() / 2) continue;
      graph::Rng rng(seed + k);
      const auto scenarios = net::sample_any_failures(g, k, scenarios_per_k, rng);
      const auto result =
          analysis::run_coverage_experiment(g, scenarios, protocols, executor);
      std::cout << "\n-- " << k << " simultaneous failure(s) --\n"
                << analysis::format_coverage_report(result);
    }
    std::cout << "\n";
  }
  return 0;
}
