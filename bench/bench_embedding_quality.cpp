// Ablation A3: embedding quality -> stretch and coverage.
//
// PR's correctness and cost both hinge on the offline embedding (DESIGN.md
// section 7).  This bench runs the single-failure experiment on the same
// topology under four embeddings -- the paper-grade auto embedding, the
// best-of-local-search, a random rotation and the identity rotation -- and
// reports genus, PR-safety, stretch and any stranded packets.
#include <iomanip>
#include <iostream>

#include "analysis/protocols.hpp"
#include "analysis/stretch.hpp"
#include "net/failure_model.hpp"
#include "topo/topologies.hpp"

int main() {
  using namespace pr;

  for (const auto& [name, g] :
       {std::pair{"abilene", topo::abilene()}, {"teleglobe", topo::teleglobe()}}) {
    std::cout << "== " << name << ": single-failure stretch vs embedding quality ==\n";
    std::cout << std::left << std::setw(12) << "embedding" << std::setw(8) << "genus"
              << std::setw(8) << "faces" << std::setw(10) << "PR-safe" << std::setw(14)
              << "mean-stretch" << std::setw(13) << "max-stretch"
              << "stranded (recoverable drops)\n";

    for (const auto strategy :
         {embed::EmbedStrategy::kAuto, embed::EmbedStrategy::kLocalSearch,
          embed::EmbedStrategy::kRandom, embed::EmbedStrategy::kIdentity}) {
      embed::EmbedOptions opts;
      opts.strategy = strategy;
      opts.random_seed = 0xA3;
      const analysis::ProtocolSuite suite(g, embed::embed(g, opts));
      const auto scenarios = net::all_single_failures(g);
      const auto result = analysis::run_stretch_experiment(g, scenarios, {suite.pr()});
      const auto& p = result.protocols[0];
      const char* label = strategy == embed::EmbedStrategy::kAuto          ? "auto"
                          : strategy == embed::EmbedStrategy::kLocalSearch ? "search"
                          : strategy == embed::EmbedStrategy::kRandom      ? "random"
                                                                           : "identity";
      std::cout << std::left << std::setw(12) << label << std::setw(8)
                << suite.embedding().genus << std::setw(8)
                << suite.embedding().faces.face_count() << std::setw(10)
                << (suite.embedding().supports_pr() ? "yes" : "no") << std::setw(14)
                << std::fixed << std::setprecision(3) << p.mean_finite_stretch()
                << std::setw(13) << p.max_finite_stretch() << p.dropped << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "Takeaway: genus-0 / PR-safe embeddings (auto) recover everything;\n"
               "unsafe rotations strand packets exactly at their self-paired links\n"
               "(reproduction finding F1), and longer cycles inflate stretch.\n";
  return 0;
}
