// Experiment E10 (Section 6 in-text claim): "the extra memory and packet
// processing time required to implement it at each router are insignificant".
//
// google-benchmark microbenchmarks of the per-packet forwarding decision:
//   * plain SPF table lookup (the baseline every router already pays),
//   * PR in normal mode (identical lookup),
//   * PR at the failure-detection hop (stamp + complementary lookup),
//   * PR in cycle-following mode (one phi lookup),
//   * FCP at a failure (SPF recomputation, amortised by its cache),
// plus table-construction costs (embedding, cycle tables, routing tables).
#include <benchmark/benchmark.h>

#include "analysis/protocols.hpp"
#include "route/fcp.hpp"
#include "route/static_spf.hpp"
#include "topo/topologies.hpp"

namespace {

using namespace pr;

struct Env {
  Env()
      : g(topo::geant()),
        suite(g),
        network(g),
        spf(suite.routes()),
        pr(suite.routes(), suite.cycle_table()),
        pr_cf(suite.routes(), suite.cycle_table()) {
    // A failed link on the shortest path from src toward dst.
    src = *g.find_node("PT");
    dst = *g.find_node("FI");
    const auto out = suite.routes().next_dart(src, dst);
    failed_edge = graph::dart_edge(out);
  }

  graph::Graph g;
  analysis::ProtocolSuite suite;
  net::Network network;
  route::StaticSpf spf;
  core::PacketRecycling pr;
  core::PacketRecycling pr_cf;
  graph::NodeId src;
  graph::NodeId dst;
  graph::EdgeId failed_edge;
};

Env& env() {
  static Env instance;
  return instance;
}

net::Packet make_packet(graph::NodeId s, graph::NodeId t) {
  net::Packet p;
  p.source = s;
  p.destination = t;
  p.ttl = 255;
  return p;
}

void BM_SpfLookup(benchmark::State& state) {
  auto& e = env();
  e.network.reset();
  for (auto _ : state) {
    auto packet = make_packet(e.src, e.dst);
    benchmark::DoNotOptimize(e.spf.forward(e.network, e.src, graph::kInvalidDart, packet));
  }
}
BENCHMARK(BM_SpfLookup);

void BM_PrNormalMode(benchmark::State& state) {
  auto& e = env();
  e.network.reset();
  for (auto _ : state) {
    auto packet = make_packet(e.src, e.dst);
    benchmark::DoNotOptimize(e.pr.forward(e.network, e.src, graph::kInvalidDart, packet));
  }
}
BENCHMARK(BM_PrNormalMode);

void BM_PrFailureDetection(benchmark::State& state) {
  auto& e = env();
  e.network.reset();
  e.network.fail_link(e.failed_edge);
  for (auto _ : state) {
    auto packet = make_packet(e.src, e.dst);
    benchmark::DoNotOptimize(e.pr.forward(e.network, e.src, graph::kInvalidDart, packet));
  }
  e.network.reset();
}
BENCHMARK(BM_PrFailureDetection);

void BM_PrCycleFollowing(benchmark::State& state) {
  auto& e = env();
  e.network.reset();
  // A marked packet arriving over some interface at an intermediate node.
  const graph::DartId arrived = e.g.out_darts(e.src)[0];
  const graph::NodeId at = e.g.dart_head(arrived);
  for (auto _ : state) {
    auto packet = make_packet(e.src, e.dst);
    packet.pr_bit = true;
    packet.dd = 6;
    benchmark::DoNotOptimize(e.pr_cf.forward(e.network, at, arrived, packet));
  }
}
BENCHMARK(BM_PrCycleFollowing);

void BM_FcpColdRecompute(benchmark::State& state) {
  auto& e = env();
  e.network.reset();
  e.network.fail_link(e.failed_edge);
  for (auto _ : state) {
    state.PauseTiming();
    route::FcpRouting fcp(e.g);  // cold cache: every decision recomputes SPF
    state.ResumeTiming();
    auto packet = make_packet(e.src, e.dst);
    benchmark::DoNotOptimize(fcp.forward(e.network, e.src, graph::kInvalidDart, packet));
  }
  e.network.reset();
}
BENCHMARK(BM_FcpColdRecompute);

void BM_FcpWarmCache(benchmark::State& state) {
  auto& e = env();
  e.network.reset();
  e.network.fail_link(e.failed_edge);
  route::FcpRouting fcp(e.g);
  {
    auto packet = make_packet(e.src, e.dst);
    (void)fcp.forward(e.network, e.src, graph::kInvalidDart, packet);  // warm up
  }
  for (auto _ : state) {
    auto packet = make_packet(e.src, e.dst);
    packet.fcp_failures.push_back(e.failed_edge);
    benchmark::DoNotOptimize(fcp.forward(e.network, e.src, graph::kInvalidDart, packet));
  }
  e.network.reset();
}
BENCHMARK(BM_FcpWarmCache);

// -- one-off table construction costs (PR's offline phase) --

void BM_BuildRoutingDb(benchmark::State& state) {
  auto& e = env();
  for (auto _ : state) {
    route::RoutingDb db(e.g);
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_BuildRoutingDb);

void BM_BuildCycleTables(benchmark::State& state) {
  auto& e = env();
  for (auto _ : state) {
    core::CycleFollowingTable table(e.suite.embedding().rotation);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_BuildCycleTables);

void BM_PlanarEmbedding(benchmark::State& state) {
  auto& e = env();
  for (auto _ : state) {
    auto result = embed::planar_embedding(e.g);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PlanarEmbedding);

}  // namespace

BENCHMARK_MAIN();
