// Reproduces Table 1: the cycle-following table at node D of the Figure 1
// network, under the paper's exact embedding, plus the tables of every other
// router for completeness.
#include <iostream>

#include "core/cycle_table.hpp"
#include "embed/faces.hpp"
#include "topo/topologies.hpp"

int main() {
  using namespace pr;
  const graph::Graph g = topo::figure1();
  const embed::RotationSystem rotation = topo::figure1_rotation(g);
  const embed::FaceSet faces = embed::trace_faces(rotation);
  const core::CycleFollowingTable cycles(rotation);

  std::cout << "Cellular cycles of the Figure 1 embedding:\n";
  for (std::size_t i = 0; i < faces.face_count(); ++i) {
    std::cout << "  c" << i + 1 << ": " << embed::face_to_string(g, faces.faces[i])
              << "\n";
  }
  std::cout << "\nTable 1 (paper) -- cycle following table at node D:\n";
  std::cout << cycles.render_table(*g.find_node("D"), faces) << "\n";

  std::cout << "Tables at the remaining routers:\n";
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (g.node_label(v) == "D") continue;
    std::cout << cycles.render_table(v, faces) << "\n";
  }
  return 0;
}
