// Shared driver for the six panels of the paper's Figure 2.
//
// Each panel binary picks a topology and a failure count; the driver samples
// (or enumerates) connectivity-preserving failure scenarios, routes every
// affected ordered pair under Re-convergence / FCP / Packet Re-cycling, and
// prints the CCDF series P(Stretch > x | affected path) on the paper's axis
// x = 1..15, followed by delivery statistics.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "analysis/protocols.hpp"
#include "analysis/report.hpp"
#include "graph/connectivity.hpp"
#include "net/failure_model.hpp"
#include "sim/parallel_sweep.hpp"

namespace pr::bench {

struct PanelConfig {
  std::string panel;       ///< e.g. "Figure 2(a)"
  std::string topology;    ///< display name
  std::size_t failures = 1;
  std::size_t scenarios = 300;  ///< ignored for single failures (enumerated)
  std::uint64_t seed = 0xF16;
  std::size_t threads = 0;  ///< sweep shards; 0 = one per hardware thread
};

/// Panel binaries take `<binary> [threads]`, validated by the shared helper
/// (falls back to PR_SWEEP_THREADS; 0 = hardware).
inline std::size_t panel_threads(int argc, char** argv) {
  return sim::threads_from_arg(argc, argv, 1);
}

inline int run_figure2_panel(const graph::Graph& g, const PanelConfig& cfg) {
  std::cout << cfg.panel << ": " << cfg.topology << " with " << cfg.failures
            << (cfg.failures == 1 ? " failure" : " simultaneous failures") << "\n";
  std::cout << "topology: " << g.node_count() << " nodes, " << g.edge_count()
            << " links\n";

  const analysis::ProtocolSuite suite(g);
  std::cout << "embedding: genus " << suite.embedding().genus << ", "
            << suite.embedding().faces.face_count() << " cycles, PR-safe "
            << (suite.embedding().supports_pr() ? "yes" : "no") << "\n";

  std::vector<graph::EdgeSet> scenarios;
  if (cfg.failures == 1) {
    scenarios = net::all_single_failures(g);
    std::cout << "scenarios: all " << scenarios.size() << " single link failures\n";
  } else if (double combos = 1.0; [&] {
               for (std::size_t i = 0; i < cfg.failures; ++i) {
                 combos *= static_cast<double>(g.edge_count() - i) /
                           static_cast<double>(i + 1);
               }
               return combos <= 50000.0;
             }()) {
    // The subset space is small enough to enumerate: take EVERY
    // connectivity-preserving failure combination (exhaustive, like the
    // single-failure panels).
    for (auto& candidate : net::enumerate_failures(g, cfg.failures)) {
      if (graph::is_connected(g, &candidate)) scenarios.push_back(std::move(candidate));
    }
    std::cout << "scenarios: all " << scenarios.size()
              << " connectivity-preserving failure sets (exhaustive over "
              << static_cast<std::size_t>(combos) << " combinations)\n";
  } else {
    graph::Rng rng(cfg.seed);
    scenarios = net::sample_connected_failures(g, cfg.failures, cfg.scenarios, rng);
    std::cout << "scenarios: " << scenarios.size()
              << " sampled connectivity-preserving failure sets (seed " << cfg.seed
              << ")\n";
  }
  std::cout << "\n";

  // The scenario enumeration above is the work list; shard it across the
  // sweep executor (per-scenario units, canonical-order merge, so the output
  // matches the serial path bit for bit at any thread count).
  sim::SweepExecutor executor(cfg.threads);
  std::cout << "sweep: " << executor.thread_count() << " thread(s)\n\n";
  const auto result =
      analysis::run_stretch_experiment(g, scenarios, suite.paper_trio(), executor);
  std::cout << analysis::format_stretch_report(result, analysis::paper_stretch_axis());

  for (const auto& p : result.protocols) {
    if (p.name == "Packet Re-cycling" && p.dropped > 0) {
      std::cout << "\nnote: " << p.dropped << " PR packets livelocked although their"
                << " destinations stayed reachable.\n"
                << "      " << cfg.topology << " is non-planar (genus "
                << suite.embedding().genus << " embedding); on a handle a"
                << " joined-region boundary\n"
                << "      need not separate the surface, so the decreasing-distance"
                << " exit can be\n"
                << "      unreachable (reproduction finding F2, DESIGN.md section 7)."
                << "  The CCDF\n"
                << "      counts these as infinite stretch; FCP delivers them.\n";
    }
  }
  return 0;
}

}  // namespace pr::bench
