// Reproduces Figure 2(e): Teleglobe stretch CCDF, 10 failure(s).
#include "figure2_common.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  const auto g = pr::topo::teleglobe();
  pr::bench::PanelConfig cfg;
  cfg.panel = "Figure 2(e)";
  cfg.topology = "Teleglobe";
  cfg.failures = 10;
  cfg.threads = pr::bench::panel_threads(argc, argv);
  return pr::bench::run_figure2_panel(g, cfg);
}
