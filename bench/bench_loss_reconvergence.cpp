// Experiment E11 (Section 1 motivation): packets lost during a routing
// convergence outage versus Packet Re-cycling.
//
// "If a heavily loaded OC-192 link is down for a second, more than a quarter
//  of a million packets could be lost, given an average packet size of 1 kB."
//
// We replay that story analytically and in the event simulator: a link on
// GEANT fails at t=0; the IGP needs detection + SPF + FIB-update time to
// converge, during which every packet that reaches the failure point is
// dropped.  PR reroutes from the first packet after detection.
#include <iomanip>
#include <iostream>

#include "analysis/protocols.hpp"
#include "net/event_sim.hpp"
#include "route/igp.hpp"
#include "route/reconvergence.hpp"
#include "route/scenario_cache.hpp"
#include "topo/topologies.hpp"

int main() {
  using namespace pr;

  // -- analytic headline number ------------------------------------------------
  const double oc192_bps = 9.953e9;     // OC-192 line rate
  const double packet_bytes = 1000.0;   // the paper's 1 kB average
  std::cout << "OC-192 at full load, 1 kB packets, outage vs packets lost:\n";
  for (double load : {0.25, 0.5, 1.0}) {
    for (double outage : {0.2, 1.0, 60.0}) {
      const double lost = oc192_bps * load / 8.0 / packet_bytes * outage;
      std::cout << "  load " << std::setw(4) << load * 100 << "%  outage "
                << std::setw(6) << outage << " s  ->  " << std::fixed
                << std::setprecision(0) << lost << " packets lost\n"
                << std::defaultfloat << std::setprecision(6);
    }
  }
  std::cout << "(the paper's quarter-million packets corresponds to ~0.2 s at full"
               " load)\n\n";

  // -- event-driven comparison on GEANT -----------------------------------------
  const graph::Graph g = topo::geant();
  const analysis::ProtocolSuite suite(g);
  const auto src = *g.find_node("PT");
  const auto dst = *g.find_node("RU");
  const auto failed = graph::dart_edge(suite.routes().next_dart(src, dst));

  const double kFailureTime = 0.010;
  const double kConvergence = 0.900;  // detection + flooding + SPF + FIB update
  const double kEnd = 2.0;
  const double kPacketInterval = 0.001;  // 1000 pps probe stream

  struct Tally {
    std::size_t delivered = 0;
    std::size_t dropped = 0;
  };

  std::cout << "GEANT " << g.display_name(src) << " -> " << g.display_name(dst)
            << ", link " << g.dart_name(suite.routes().next_dart(src, dst))
            << " fails at t=" << kFailureTime << " s, IGP converges after "
            << kConvergence << " s, probe rate " << 1 / kPacketInterval
            << " pps, horizon " << kEnd << " s\n";

  net::Network reconv_net(g);
  // The convergence-time table swap borrows delta-repaired tables from the
  // cache (only the trees using the failed link are recomputed) instead of
  // building a fresh RoutingDb at the convergence instant.
  route::ScenarioRoutingCache routing_cache;
  route::TimedReconvergence reconv_proto(reconv_net, suite.routes(), &routing_cache);
  Tally reconv_tally;
  {
    net::Simulator sim;
    sim.at(kFailureTime, [&] { reconv_net.fail_link(failed); });
    sim.at(kFailureTime + kConvergence, [&] { reconv_proto.complete_convergence(); });
    for (double t = 0.0; t < kEnd; t += kPacketInterval) {
      net::launch_packet(sim, reconv_net, reconv_proto, src, dst, t,
                         [&reconv_tally](const net::PathTrace& trace) {
                           if (trace.delivered()) {
                             ++reconv_tally.delivered;
                           } else {
                             ++reconv_tally.dropped;
                           }
                         });
    }
    sim.run();
  }

  core::PacketRecycling pr_proto(suite.routes(), suite.cycle_table());
  Tally pr_tally;
  {
    net::Network network(g);
    net::Simulator sim;
    sim.at(kFailureTime, [&] { network.fail_link(failed); });
    for (double t = 0.0; t < kEnd; t += kPacketInterval) {
      net::launch_packet(sim, network, pr_proto, src, dst, t,
                         [&pr_tally](const net::PathTrace& trace) {
                           if (trace.delivered()) {
                             ++pr_tally.delivered;
                           } else {
                             ++pr_tally.dropped;
                           }
                         });
    }
    sim.run();
  }

  // Realistic IGP: per-router LSA flooding with staggered SPF updates
  // (detection 50 ms, 1 ms LSA processing per hop, 100 ms SPF throttle).
  net::Network igp_net(g);
  net::Simulator igp_sim;
  route::LinkStateIgp igp(igp_sim, igp_net);
  Tally igp_tally;
  {
    igp_sim.at(kFailureTime, [&] {
      igp_net.fail_link(failed);
      igp.on_link_failure(failed);
    });
    for (double t = 0.0; t < kEnd; t += kPacketInterval) {
      net::launch_packet(igp_sim, igp_net, igp.protocol(), src, dst, t,
                         [&igp_tally](const net::PathTrace& trace) {
                           if (trace.delivered()) {
                             ++igp_tally.delivered;
                           } else {
                             ++igp_tally.dropped;
                           }
                         });
    }
    igp_sim.run();
  }

  std::cout << "\nprotocol            delivered  dropped  loss-window-estimate\n";
  std::cout << "reconv (1 timer)    " << std::setw(9) << reconv_tally.delivered
            << std::setw(9) << reconv_tally.dropped << "  ~"
            << static_cast<double>(reconv_tally.dropped) * kPacketInterval
            << " s of traffic\n";
  std::cout << "igp (flooded LSAs)  " << std::setw(9) << igp_tally.delivered
            << std::setw(9) << igp_tally.dropped << "  ~"
            << static_cast<double>(igp_tally.dropped) * kPacketInterval
            << " s of traffic  (" << igp.lsa_messages() << " LSAs, "
            << igp.spf_runs() << " SPF runs, last FIB update at t="
            << igp.last_table_update() << " s)\n";
  std::cout << "packet-recycling    " << std::setw(9) << pr_tally.delivered
            << std::setw(9) << pr_tally.dropped << "  ~"
            << static_cast<double>(pr_tally.dropped) * kPacketInterval
            << " s of traffic  (0 control messages)\n";
  return 0;
}
