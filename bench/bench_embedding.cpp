// Experiment E12 (Section 7 discussion): cost and quality of computing the
// offline cellular embedding.
//
// The paper notes minimum-genus embedding is NP-hard in general, linear-time
// algorithms exist for fixed genus, and O(n) algorithms exist for planar
// graphs; it defers implementation analysis to future work.  This bench
// supplies that analysis for our embedder: wall-clock time, achieved genus
// and PR-safety per strategy across the bundled and synthetic topologies.
#include <chrono>
#include <iomanip>
#include <iostream>

#include "embed/embedder.hpp"
#include "graph/generators.hpp"
#include "topo/topologies.hpp"

int main() {
  using namespace pr;
  using Clock = std::chrono::steady_clock;

  graph::Rng rng(2026);
  const std::pair<std::string, graph::Graph> graphs[] = {
      {"figure1", topo::figure1()},
      {"abilene", topo::abilene()},
      {"teleglobe", topo::teleglobe()},
      {"geant", topo::geant()},
      {"petersen", graph::petersen()},
      {"k5", graph::k5()},
      {"torus6x6", graph::torus(6, 6)},
      {"grid10x10", graph::grid(10, 10)},
      {"rand-2ec-40", graph::random_two_edge_connected(40, 30, rng)},
      {"outerplanar-60", graph::random_outerplanar(60, 30, rng)},
  };

  std::cout << std::left << std::setw(16) << "graph" << std::setw(8) << "nodes"
            << std::setw(8) << "links" << std::setw(12) << "strategy" << std::setw(8)
            << "genus" << std::setw(8) << "faces" << std::setw(10) << "PR-safe"
            << std::setw(12) << "avg-cycle" << "time\n";

  for (const auto& [name, g] : graphs) {
    for (const auto strategy :
         {embed::EmbedStrategy::kAuto, embed::EmbedStrategy::kIdentity}) {
      embed::EmbedOptions opts;
      opts.strategy = strategy;
      const auto start = Clock::now();
      const auto emb = embed::embed(g, opts);
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
      std::cout << std::left << std::setw(16) << name << std::setw(8) << g.node_count()
                << std::setw(8) << g.edge_count() << std::setw(12)
                << (strategy == embed::EmbedStrategy::kAuto
                        ? (emb.strategy_used == embed::EmbedStrategy::kPlanar
                               ? "auto/dmp"
                               : "auto/search")
                        : "identity")
                << std::setw(8) << emb.genus << std::setw(8) << emb.faces.face_count()
                << std::setw(10) << (emb.supports_pr() ? "yes" : "no") << std::setw(12)
                << std::fixed << std::setprecision(2)
                << emb.faces.average_face_length() << std::defaultfloat
                << elapsed.count() / 1000.0 << " ms\n";
    }
  }
  return 0;
}
