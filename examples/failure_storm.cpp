// Event-driven failure storm with link flapping (paper Section 7).
//
// Runs several independent storm replicas on GEANT: each replica streams
// packets between random pairs while links fail and recover on a schedule,
// with a FlapDamper enforcing the hold-down rule so that restores only commit
// after the link has stayed down long enough.  Replicas are sharded across
// the parallel sweep executor; each draws from its own RNG stream split off
// the base seed (sim::split_seed), so the aggregate comparison of Packet
// Re-cycling against plain SPF is reproducible for any thread count.
//
//   $ ./failure_storm [seed] [replicas] [threads]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/protocols.hpp"
#include "core/pr_protocol.hpp"
#include "graph/rng.hpp"
#include "net/event_sim.hpp"
#include "net/failure_model.hpp"
#include "route/static_spf.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"

namespace {

struct Tally {
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  double cost = 0;

  void merge(const Tally& other) {
    delivered += other.delivered;
    dropped += other.dropped;
    cost += other.cost;
  }
};

/// One replica's outcome; filled by exactly one worker, merged in replica
/// order afterwards.
struct StormResult {
  Tally pr;
  Tally spf;
  std::size_t events = 0;
  std::size_t residual_failures = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pr;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  // Validated like the thread count: replicas sizes an allocation, so a
  // "-1" wrapped through strtoull must not become 2^64-1 storms.
  std::size_t replicas = 4;
  if (argc > 2 &&
      (!sim::parse_count_arg(argv[2], 1000000, replicas) || replicas == 0)) {
    std::cerr << "usage: failure_storm [seed] [replicas, 1..1000000] [threads]\n";
    return 1;
  }
  const std::size_t threads = sim::threads_from_arg(argc, argv, 3);

  const graph::Graph g = topo::geant();
  const analysis::ProtocolSuite suite(g);

  std::vector<StormResult> results(replicas);
  sim::SweepExecutor executor(threads);

  executor.run(
      replicas,
      [&](std::size_t unit, sim::WorkerContext& ctx) {
        // Per-replica world: its own timeline, link state and protocol
        // instances; the shared suite tables are immutable.
        core::PacketRecycling pr_proto(suite.routes(), suite.cycle_table());
        route::StaticSpf spf_proto(suite.routes());

        net::Network network(g);
        net::Simulator simulator;
        net::FlapDamper damper(simulator, network, /*hold_down=*/0.5);
        graph::Rng& rng = ctx.rng();  // split_seed(seed, unit) stream

        // Storm: every 200 ms a random link fails; restore requested 300 ms
        // later.  The damper holds restores back and failures cancel them.
        const double kStormEnd = 10.0;
        for (double t = 0.5; t < kStormEnd; t += 0.2) {
          const auto e = static_cast<graph::EdgeId>(rng.below(g.edge_count()));
          simulator.at(t, [&damper, e] { damper.fail(e); });
          simulator.at(t + 0.3, [&damper, e] { damper.request_restore(e); });
        }

        // Traffic: 40 packets per second between random distinct pairs, under
        // both protocols simultaneously (separate tallies, same timeline).
        // Accumulate into a worker-local result and publish once at the end:
        // adjacent results[] slots share cache lines, and the delivery
        // callbacks fire on every packet.
        StormResult out;
        for (double t = 0.0; t < kStormEnd; t += 0.025) {
          const auto s = static_cast<graph::NodeId>(rng.below(g.node_count()));
          auto d = static_cast<graph::NodeId>(rng.below(g.node_count() - 1));
          if (d >= s) ++d;
          const auto count = [](Tally& tally) {
            return [&tally](const net::PathTrace& trace) {
              if (trace.delivered()) {
                ++tally.delivered;
                tally.cost += trace.cost;
              } else {
                ++tally.dropped;
              }
            };
          };
          net::launch_packet(simulator, network, pr_proto, s, d, t, count(out.pr));
          net::launch_packet(simulator, network, spf_proto, s, d, t, count(out.spf));
        }

        simulator.run();
        out.events = simulator.events_processed();
        out.residual_failures = network.failure_count();
        results[unit] = out;
      },
      seed);

  // Canonical-order merge across replicas.
  Tally pr_tally;
  Tally spf_tally;
  std::size_t events = 0;
  for (const StormResult& r : results) {
    pr_tally.merge(r.pr);
    spf_tally.merge(r.spf);
    events += r.events;
  }

  const auto report = [](const char* name, const Tally& tally) {
    const std::size_t total = tally.delivered + tally.dropped;
    std::cout << name << ": " << tally.delivered << "/" << total << " delivered ("
              << 100.0 * static_cast<double>(tally.delivered) /
                     static_cast<double>(total)
              << "%), mean delivered-path cost "
              << (tally.delivered ? tally.cost / static_cast<double>(tally.delivered)
                                  : 0.0)
              << "\n";
  };
  std::cout << "GEANT failure storm, base seed " << seed << ", " << replicas
            << " replica(s) on " << executor.thread_count() << " thread(s), "
            << events << " events total\n";
  report("packet-recycling", pr_tally);
  report("plain-spf       ", spf_tally);
  for (std::size_t r = 0; r < results.size(); ++r) {
    std::cout << "  replica " << r << " (seed " << sim::split_seed(seed, r)
              << "): pr " << results[r].pr.delivered << "/"
              << results[r].pr.delivered + results[r].pr.dropped << ", spf "
              << results[r].spf.delivered << "/"
              << results[r].spf.delivered + results[r].spf.dropped
              << ", residual failed links " << results[r].residual_failures << "\n";
  }
  return 0;
}
