// Event-driven failure storm with link flapping (paper Section 7).
//
// Streams packets between random pairs on GEANT while links fail and recover
// on a schedule; a FlapDamper enforces the hold-down rule so that restores
// only commit after the link has stayed down long enough.  Compares delivery
// counts of Packet Re-cycling against plain SPF over the same storm.
//
//   $ ./failure_storm [seed]
#include <iostream>

#include "analysis/protocols.hpp"
#include "core/pr_protocol.hpp"
#include "graph/rng.hpp"
#include "net/event_sim.hpp"
#include "net/failure_model.hpp"
#include "route/static_spf.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  using namespace pr;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const graph::Graph g = topo::geant();
  const analysis::ProtocolSuite suite(g);

  core::PacketRecycling pr_proto(suite.routes(), suite.cycle_table());
  route::StaticSpf spf_proto(suite.routes());

  struct Tally {
    std::size_t delivered = 0;
    std::size_t dropped = 0;
    double cost = 0;
  };
  Tally pr_tally;
  Tally spf_tally;

  net::Network network(g);
  net::Simulator sim;
  net::FlapDamper damper(sim, network, /*hold_down=*/0.5);
  graph::Rng rng(seed);

  // Storm: every 200 ms a random link fails; restore requested 300 ms later.
  // The damper holds restores back, and repeated failures cancel them.
  const double kStormEnd = 10.0;
  for (double t = 0.5; t < kStormEnd; t += 0.2) {
    const auto e = static_cast<graph::EdgeId>(rng.below(g.edge_count()));
    sim.at(t, [&damper, e] { damper.fail(e); });
    sim.at(t + 0.3, [&damper, e] { damper.request_restore(e); });
  }

  // Traffic: 40 packets per second between random distinct pairs, under both
  // protocols simultaneously (separate tallies, same link-state timeline).
  for (double t = 0.0; t < kStormEnd; t += 0.025) {
    const auto s = static_cast<graph::NodeId>(rng.below(g.node_count()));
    auto d = static_cast<graph::NodeId>(rng.below(g.node_count() - 1));
    if (d >= s) ++d;
    const auto count = [](Tally& tally) {
      return [&tally](const net::PathTrace& trace) {
        if (trace.delivered()) {
          ++tally.delivered;
          tally.cost += trace.cost;
        } else {
          ++tally.dropped;
        }
      };
    };
    net::launch_packet(sim, network, pr_proto, s, d, t, count(pr_tally));
    net::launch_packet(sim, network, spf_proto, s, d, t, count(spf_tally));
  }

  sim.run();

  const auto report = [](const char* name, const Tally& tally) {
    const std::size_t total = tally.delivered + tally.dropped;
    std::cout << name << ": " << tally.delivered << "/" << total << " delivered ("
              << 100.0 * static_cast<double>(tally.delivered) /
                     static_cast<double>(total)
              << "%), mean delivered-path cost "
              << (tally.delivered ? tally.cost / static_cast<double>(tally.delivered)
                                  : 0.0)
              << "\n";
  };
  std::cout << "GEANT failure storm, seed " << seed << ", " << sim.events_processed()
            << " events, sim time " << sim.now() << " s\n";
  report("packet-recycling", pr_tally);
  report("plain-spf       ", spf_tally);
  std::cout << "residual failed links at end: " << network.failure_count() << "\n";
  return 0;
}
