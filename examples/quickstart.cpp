// Quickstart: the paper's Figure 1, end to end.
//
// Builds the 6-node example network, installs the paper's cellular embedding,
// prints the cycle system and Table 1, then replays the three failure
// scenarios of Sections 4.2 and 4.3 with hop-by-hop traces.
//
//   $ ./quickstart
#include <iostream>

#include "core/cycle_table.hpp"
#include "core/pr_protocol.hpp"
#include "embed/faces.hpp"
#include "net/forwarding.hpp"
#include "net/header_codec.hpp"
#include "route/routing_db.hpp"
#include "topo/topologies.hpp"

namespace {

void print_trace(const pr::graph::Graph& g, const pr::net::PathTrace& trace) {
  // Shared renderer: includes hops/cost and, for drops, the DropReason name.
  std::cout << "  route: " << pr::net::trace_to_string(g, trace) << "\n";
}

}  // namespace

int main() {
  using namespace pr;

  // 1. The network and its cellular embedding (computed offline in PR).
  const graph::Graph g = topo::figure1();
  const embed::RotationSystem rotation = topo::figure1_rotation(g);
  const embed::FaceSet faces = embed::trace_faces(rotation);

  std::cout << "Figure 1 network: " << g.node_count() << " nodes, " << g.edge_count()
            << " links, genus " << embed::euler_genus(g, faces) << " embedding\n\n";
  std::cout << "Cellular cycle system (every link on two opposite cycles):\n";
  for (std::size_t i = 0; i < faces.face_count(); ++i) {
    std::cout << "  c" << i + 1 << ": " << embed::face_to_string(g, faces.faces[i])
              << "\n";
  }

  // 2. Router state: routing tables with the DD column + cycle-following tables.
  const route::RoutingDb routes(g);
  const core::CycleFollowingTable cycles(rotation);
  std::cout << "\n" << cycles.render_table(*g.find_node("D"), faces) << "\n";

  // 3. Header budget (Section 6): PR bit + DD bits inside DSCP pool 2.
  const auto layout = net::PrHeaderLayout::for_hop_diameter(routes.max_discriminator());
  std::cout << "Header: 1 PR bit + " << layout.dd_bits << " DD bits = "
            << layout.total_bits() << " bits"
            << (layout.fits_dscp_pool2() ? " (fits DSCP pool 2)\n" : "\n");

  // 4. The worked failure scenarios.
  core::PacketRecycling pr_proto(routes, cycles);
  const auto edge = [&g](const char* a, const char* b) {
    return *g.find_edge(*g.find_node(a), *g.find_node(b));
  };
  const auto a = *g.find_node("A");
  const auto f = *g.find_node("F");

  std::cout << "\nScenario 0 (no failures), A -> F:\n";
  {
    net::Network network(g);
    print_trace(g, net::route_packet(network, pr_proto, a, f));
  }

  std::cout << "\nScenario 1 (Section 4.2, link D-E down), A -> F:\n";
  {
    net::Network network(g);
    network.fail_link(edge("D", "E"));
    print_trace(g, net::route_packet(network, pr_proto, a, f));
  }

  std::cout << "\nScenario 2 (Section 4.2, links D-E and A-B down), A -> F:\n";
  {
    net::Network network(g);
    network.fail_link(edge("D", "E"));
    network.fail_link(edge("A", "B"));
    print_trace(g, net::route_packet(network, pr_proto, a, f));
  }

  std::cout << "\nScenario 3 (Section 4.3, links D-E and B-C down), A -> F:\n";
  {
    net::Network network(g);
    network.fail_link(edge("D", "E"));
    network.fail_link(edge("B", "C"));
    const auto trace = net::route_packet(network, pr_proto, a, f);
    print_trace(g, trace);
    std::cout << "  DD stamped by router D: " << trace.final_packet.dd
              << " (hop count D -> F before the failure)\n";
  }

  return 0;
}
