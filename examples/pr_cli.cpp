// pr_cli: command-line what-if tool over the library.
//
//   pr_cli [--topology abilene|geant|teleglobe|figure1] [--load FILE]
//          [--fail U-V]... [--protocol pr|pr-1bit|fcp|lfa|spf|reconvergence]
//          [--route SRC DST]... [--summary]
//
// Examples:
//   pr_cli --topology abilene --fail Denver-KansasCity --route Seattle Houston
//   pr_cli --topology geant --fail DE-FR --fail FR-UK --summary
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "analysis/protocols.hpp"
#include "graph/connectivity.hpp"
#include "graph/graphio.hpp"
#include "sim/forwarding_engine.hpp"
#include "topo/topologies.hpp"

namespace {

using namespace pr;

[[noreturn]] void usage(const std::string& error = {}) {
  if (!error.empty()) std::cerr << "error: " << error << "\n";
  std::cerr << "usage: pr_cli [--topology abilene|geant|teleglobe|figure1]\n"
               "              [--load FILE] [--fail U-V]...\n"
               "              [--protocol pr|pr-1bit|fcp|lfa|spf|reconvergence]\n"
               "              [--route SRC DST]... [--summary]\n";
  std::exit(error.empty() ? 0 : 1);
}

graph::NodeId need_node(const graph::Graph& g, const std::string& label) {
  if (const auto v = g.find_node(label)) return *v;
  usage("unknown node '" + label + "'");
}

}  // namespace

int main(int argc, char** argv) {
  std::string topology = "abilene";
  std::string load_file;
  std::string protocol = "pr";
  std::vector<std::string> fail_specs;
  std::vector<std::pair<std::string, std::string>> routes;
  bool summary = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--topology") {
      topology = next();
    } else if (arg == "--load") {
      load_file = next();
    } else if (arg == "--fail") {
      fail_specs.push_back(next());
    } else if (arg == "--protocol") {
      protocol = next();
    } else if (arg == "--route") {
      const auto src = next();
      routes.emplace_back(src, next());
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage("unknown argument '" + arg + "'");
    }
  }

  graph::Graph g;
  if (!load_file.empty()) {
    std::ifstream in(load_file);
    if (!in) usage("cannot open " + load_file);
    std::ostringstream text;
    text << in.rdbuf();
    g = graph::from_edge_list(text.str());
  } else if (topology == "abilene") {
    g = topo::abilene();
  } else if (topology == "geant") {
    g = topo::geant();
  } else if (topology == "teleglobe") {
    g = topo::teleglobe();
  } else if (topology == "figure1") {
    g = topo::figure1();
  } else {
    usage("unknown topology '" + topology + "'");
  }

  const analysis::ProtocolSuite suite(g);
  analysis::NamedFactory factory = suite.pr();
  if (protocol == "pr") {
    factory = suite.pr();
  } else if (protocol == "pr-1bit") {
    factory = suite.pr_single_bit();
  } else if (protocol == "fcp") {
    factory = suite.fcp();
  } else if (protocol == "lfa") {
    factory = suite.lfa();
  } else if (protocol == "spf") {
    factory = suite.spf();
  } else if (protocol == "reconvergence") {
    factory = suite.reconvergence();
  } else {
    usage("unknown protocol '" + protocol + "'");
  }

  net::Network network(g);
  for (const auto& spec : fail_specs) {
    const auto dash = spec.find('-');
    if (dash == std::string::npos) usage("--fail expects U-V, got '" + spec + "'");
    const auto u = need_node(g, spec.substr(0, dash));
    const auto v = need_node(g, spec.substr(dash + 1));
    const auto e = g.find_edge(u, v);
    if (!e) usage("no link " + spec);
    network.fail_link(*e);
  }

  std::cout << "topology: " << (load_file.empty() ? topology : load_file) << " ("
            << g.node_count() << " nodes, " << g.edge_count() << " links), "
            << network.failure_count() << " failed link(s), protocol "
            << factory.name << "\n";
  if (network.failure_count() > 0 &&
      !graph::is_connected(g, &network.failed_links())) {
    std::cout << "warning: the failure set PARTITIONS the network\n";
  }

  const auto proto = factory.make(network);
  if (routes.empty() && !summary) summary = true;

  for (const auto& [src_label, dst_label] : routes) {
    const auto s = need_node(g, src_label);
    const auto t = need_node(g, dst_label);
    const auto trace = net::route_packet(network, *proto, s, t);
    std::cout << "\n" << src_label << " -> " << dst_label << ": ";
    if (trace.delivered()) {
      std::cout << "delivered, " << trace.hops << " hops, cost " << trace.cost << "\n  ";
      for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
        std::cout << (i ? " > " : "") << g.display_name(trace.nodes[i]);
      }
      std::cout << "\n";
    } else {
      std::cout << "DROPPED (" << net::drop_reason_name(trace.drop_reason) << ")\n";
    }
  }

  if (summary) {
    // One stats-only batch over all ordered pairs: the sweep runs through the
    // shared forwarding engine without per-packet trace allocations.
    const auto flows = sim::all_pairs_flows(g);
    const auto sweep_proto = factory.make(network);
    const auto batch = sim::route_batch(network, *sweep_proto, flows);
    double worst = 0;
    for (std::size_t f = 0; f < batch.size(); ++f) {
      if (batch[f].delivered() &&
          suite.routes().reachable(flows[f].source, flows[f].destination)) {
        worst = std::max(worst, batch[f].cost / suite.routes().cost(
                                                    flows[f].source,
                                                    flows[f].destination));
      }
    }
    std::cout << "\nall-pairs: " << batch.delivered_count() << " delivered, "
              << batch.dropped_count() << " dropped, worst stretch " << worst << "\n";
  }
  return 0;
}
