// ISP resilience report: runs the paper's protocol comparison on one of the
// bundled backbone topologies and prints a per-link vulnerability summary.
//
//   $ ./isp_resilience [abilene|geant|teleglobe]
#include <iomanip>
#include <iostream>
#include <string>

#include "analysis/protocols.hpp"
#include "analysis/report.hpp"
#include "graph/connectivity.hpp"
#include "net/failure_model.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  using namespace pr;

  const std::string which = argc > 1 ? argv[1] : "abilene";
  graph::Graph g;
  if (which == "abilene") {
    g = topo::abilene();
  } else if (which == "geant") {
    g = topo::geant();
  } else if (which == "teleglobe") {
    g = topo::teleglobe();
  } else {
    std::cerr << "usage: isp_resilience [abilene|geant|teleglobe]\n";
    return 1;
  }

  std::cout << which << ": " << g.node_count() << " nodes, " << g.edge_count()
            << " links, 2-edge-connected=" << std::boolalpha
            << graph::is_two_edge_connected(g) << "\n";

  const analysis::ProtocolSuite suite(g);
  std::cout << "embedding: genus " << suite.embedding().genus << ", "
            << suite.embedding().faces.face_count() << " cycles, PR-safe="
            << suite.embedding().supports_pr() << "\n\n";

  // Overall Figure-2-style comparison across all single link failures.
  const auto scenarios = net::all_single_failures(g);
  const auto result = analysis::run_stretch_experiment(g, scenarios, suite.paper_trio());
  std::cout << analysis::format_stretch_report(result, analysis::paper_stretch_axis())
            << "\n";

  // Per-link vulnerability: how much stretch does each failure cost PR?
  std::cout << "Per-link impact under Packet Re-cycling:\n";
  std::cout << std::left << std::setw(28) << "failed link" << std::setw(16)
            << "affected pairs" << std::setw(14) << "mean stretch"
            << "max stretch\n";
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    std::vector<graph::EdgeSet> one;
    one.emplace_back(g.edge_count());
    one.back().insert(e);
    const auto r = analysis::run_stretch_experiment(g, one, {suite.pr()});
    const auto& p = r.protocols[0];
    const std::string link =
        g.display_name(g.edge_u(e)) + "-" + g.display_name(g.edge_v(e));
    std::cout << std::left << std::setw(28) << link << std::setw(16)
              << p.stretches.size() << std::setw(14) << std::fixed
              << std::setprecision(3) << p.mean_finite_stretch()
              << p.max_finite_stretch() << "\n";
  }
  return 0;
}
