// ISP resilience report: runs the paper's protocol comparison on one of the
// bundled backbone topologies and prints a per-link vulnerability summary.
//
//   $ ./isp_resilience [abilene|geant|teleglobe]
#include <iomanip>
#include <iostream>
#include <string>

#include "analysis/protocols.hpp"
#include "analysis/report.hpp"
#include "graph/connectivity.hpp"
#include "net/failure_model.hpp"
#include "sim/forwarding_engine.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  using namespace pr;

  const std::string which = argc > 1 ? argv[1] : "abilene";
  graph::Graph g;
  if (which == "abilene") {
    g = topo::abilene();
  } else if (which == "geant") {
    g = topo::geant();
  } else if (which == "teleglobe") {
    g = topo::teleglobe();
  } else {
    std::cerr << "usage: isp_resilience [abilene|geant|teleglobe]\n";
    return 1;
  }

  std::cout << which << ": " << g.node_count() << " nodes, " << g.edge_count()
            << " links, 2-edge-connected=" << std::boolalpha
            << graph::is_two_edge_connected(g) << "\n";

  const analysis::ProtocolSuite suite(g);
  std::cout << "embedding: genus " << suite.embedding().genus << ", "
            << suite.embedding().faces.face_count() << " cycles, PR-safe="
            << suite.embedding().supports_pr() << "\n\n";

  // Overall Figure-2-style comparison across all single link failures.
  const auto scenarios = net::all_single_failures(g);
  const auto result = analysis::run_stretch_experiment(g, scenarios, suite.paper_trio());
  std::cout << analysis::format_stretch_report(result, analysis::paper_stretch_axis())
            << "\n";

  // Per-link vulnerability: how much stretch does each failure cost PR?
  // Driven straight through the batched engine against the suite's pristine
  // tables -- one stats-only batch per failed link, reusing all buffers.
  std::cout << "Per-link impact under Packet Re-cycling:\n";
  std::cout << std::left << std::setw(28) << "failed link" << std::setw(16)
            << "affected pairs" << std::setw(14) << "mean stretch"
            << "max stretch\n";
  std::vector<sim::FlowSpec> flows;
  std::vector<double> base_costs;
  sim::BatchResult batch;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    graph::EdgeSet failures(g.edge_count());
    failures.insert(e);
    flows.clear();
    base_costs.clear();
    for (graph::NodeId s = 0; s < g.node_count(); ++s) {
      for (graph::NodeId t = 0; t < g.node_count(); ++t) {
        if (s == t || !analysis::path_affected(suite.routes(), s, t, failures)) {
          continue;
        }
        flows.push_back(sim::FlowSpec{s, t});
        base_costs.push_back(suite.routes().cost(s, t));
      }
    }

    net::Network network(g);
    network.fail_link(e);
    const auto pr_proto = suite.pr().make(network);
    sim::route_batch(network, *pr_proto, flows, sim::TraceMode::kStats, batch);

    double sum = 0;
    double worst = 0;
    std::size_t finite = 0;
    for (std::size_t f = 0; f < batch.size(); ++f) {
      if (!batch[f].delivered()) continue;
      const double stretch = batch[f].cost / base_costs[f];
      sum += stretch;
      worst = std::max(worst, stretch);
      ++finite;
    }
    const std::string link =
        g.display_name(g.edge_u(e)) + "-" + g.display_name(g.edge_v(e));
    std::cout << std::left << std::setw(28) << link << std::setw(16) << flows.size()
              << std::setw(14) << std::fixed << std::setprecision(3)
              << (finite ? sum / static_cast<double>(finite) : 0.0) << worst << "\n";
  }
  return 0;
}
