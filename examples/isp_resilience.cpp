// ISP resilience report: runs the paper's protocol comparison on one of the
// bundled backbone topologies and prints a per-link vulnerability summary.
// Both sweeps are sharded across the parallel sweep executor; output is
// identical for every thread count.
//
//   $ ./isp_resilience [abilene|geant|teleglobe] [threads]
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/protocols.hpp"
#include "analysis/report.hpp"
#include "graph/connectivity.hpp"
#include "net/failure_model.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"

int main(int argc, char** argv) {
  using namespace pr;

  const std::string which = argc > 1 ? argv[1] : "abilene";
  graph::Graph g;
  if (which == "abilene") {
    g = topo::abilene();
  } else if (which == "geant") {
    g = topo::geant();
  } else if (which == "teleglobe") {
    g = topo::teleglobe();
  } else {
    std::cerr << "usage: isp_resilience [abilene|geant|teleglobe] [threads]\n";
    return 1;
  }
  const std::size_t threads = sim::threads_from_arg(argc, argv, 2);

  std::cout << which << ": " << g.node_count() << " nodes, " << g.edge_count()
            << " links, 2-edge-connected=" << std::boolalpha
            << graph::is_two_edge_connected(g) << "\n";

  const analysis::ProtocolSuite suite(g);
  std::cout << "embedding: genus " << suite.embedding().genus << ", "
            << suite.embedding().faces.face_count() << " cycles, PR-safe="
            << suite.embedding().supports_pr() << "\n";

  sim::SweepExecutor executor(threads);
  std::cout << "sweep: " << executor.thread_count() << " thread(s)\n\n";

  // Overall Figure-2-style comparison across all single link failures.
  const auto scenarios = net::all_single_failures(g);
  const auto result =
      analysis::run_stretch_experiment(g, scenarios, suite.paper_trio(), executor);
  std::cout << analysis::format_stretch_report(result, analysis::paper_stretch_axis())
            << "\n";

  // Per-link vulnerability: how much stretch does each failure cost PR?
  // One work unit per failed link, driven through the batched engine with the
  // worker's reusable buffers; rows land in per-link slots and print in link
  // order, so the table is the same whatever the thread count.
  struct LinkRow {
    std::size_t affected = 0;
    double mean = 0;
    double worst = 0;
  };
  std::vector<LinkRow> rows(g.edge_count());
  executor.run(g.edge_count(), [&](std::size_t unit, sim::WorkerContext& ctx) {
    const auto e = static_cast<graph::EdgeId>(unit);
    graph::EdgeSet failures(g.edge_count());
    failures.insert(e);
    ctx.flows.clear();
    ctx.base_costs.clear();
    for (graph::NodeId s = 0; s < g.node_count(); ++s) {
      for (graph::NodeId t = 0; t < g.node_count(); ++t) {
        if (s == t || !analysis::path_affected(suite.routes(), s, t, failures)) {
          continue;
        }
        ctx.flows.push_back(sim::FlowSpec{s, t});
        ctx.base_costs.push_back(suite.routes().cost(s, t));
      }
    }

    net::Network network(g);
    network.fail_link(e);
    const auto pr_proto = suite.pr().make(network);
    sim::route_batch(network, *pr_proto, ctx.flows, sim::TraceMode::kStats, ctx.batch);

    double sum = 0;
    double worst = 0;
    std::size_t finite = 0;
    for (std::size_t f = 0; f < ctx.batch.size(); ++f) {
      if (!ctx.batch[f].delivered()) continue;
      const double stretch = ctx.batch[f].cost / ctx.base_costs[f];
      sum += stretch;
      worst = std::max(worst, stretch);
      ++finite;
    }
    rows[unit] = LinkRow{ctx.flows.size(),
                         finite ? sum / static_cast<double>(finite) : 0.0, worst};
  });

  std::cout << "Per-link impact under Packet Re-cycling:\n";
  std::cout << std::left << std::setw(28) << "failed link" << std::setw(16)
            << "affected pairs" << std::setw(14) << "mean stretch"
            << "max stretch\n";
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const std::string link =
        g.display_name(g.edge_u(e)) + "-" + g.display_name(g.edge_v(e));
    std::cout << std::left << std::setw(28) << link << std::setw(16)
              << rows[e].affected << std::setw(14) << std::fixed
              << std::setprecision(3) << rows[e].mean << rows[e].worst << "\n";
  }
  return 0;
}
