// Embedding explorer: computes cellular embeddings of a user-supplied or
// bundled topology and reports the cycle system PR would run on.
//
//   $ ./embedding_explorer                      # bundled demo graphs
//   $ ./embedding_explorer mynet.edges          # your own edge list:
//       node A            (optional; nodes may appear implicitly)
//       edge A B [weight]
#include <fstream>
#include <iostream>
#include <sstream>

#include "embed/embedder.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/graphio.hpp"
#include "topo/topologies.hpp"

namespace {

void explore(const std::string& name, const pr::graph::Graph& g) {
  using namespace pr;
  std::cout << "== " << name << ": " << g.node_count() << " nodes, " << g.edge_count()
            << " links ==\n";
  if (g.edge_count() == 0) {
    std::cout << "  (no links, nothing to embed)\n\n";
    return;
  }
  std::cout << "  2-edge-connected: " << std::boolalpha
            << graph::is_two_edge_connected(g)
            << "  (required for the single-failure guarantee)\n";

  for (const auto strategy : {embed::EmbedStrategy::kAuto, embed::EmbedStrategy::kIdentity}) {
    embed::EmbedOptions opts;
    opts.strategy = strategy;
    const auto emb = embed::embed(g, opts);
    const auto unsafe = embed::self_paired_edges(g, emb.faces);
    std::cout << "  " << (strategy == embed::EmbedStrategy::kAuto ? "auto    "
                                                                  : "identity")
              << ": genus " << emb.genus << ", " << emb.faces.face_count()
              << " cycles, avg cycle length " << emb.faces.average_face_length()
              << ", PR-safe " << unsafe.empty();
    if (!unsafe.empty()) {
      std::cout << " (self-paired:";
      for (auto e : unsafe) {
        std::cout << " " << g.display_name(g.edge_u(e)) << "-"
                  << g.display_name(g.edge_v(e));
      }
      std::cout << ")";
    }
    std::cout << "\n";
    if (strategy == embed::EmbedStrategy::kAuto && g.edge_count() <= 24) {
      for (std::size_t i = 0; i < emb.faces.face_count(); ++i) {
        std::cout << "      c" << i + 1 << ": "
                  << embed::face_to_string(g, emb.faces.faces[i]) << "\n";
      }
    }
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pr;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      const graph::Graph g = graph::from_edge_list(text.str());
      explore(argv[1], g);
    } catch (const std::exception& ex) {
      std::cerr << "parse error: " << ex.what() << "\n";
      return 1;
    }
    return 0;
  }

  explore("figure1 (paper example)", topo::figure1());
  explore("abilene", topo::abilene());
  explore("geant", topo::geant());
  explore("teleglobe", topo::teleglobe());
  explore("petersen (non-planar)", graph::petersen());
  graph::Rng rng(7);
  explore("random outerplanar n=12", graph::random_outerplanar(12, 6, rng));
  return 0;
}
