// Section 7 future-work sketch, made concrete: protecting multihomed egress.
//
// "Multihomed ISPs that receive several announcements for the same prefix via
//  different outgoing links can map this onto a connectivity graph, and use
//  our technique to obtain cycle following routes."
//
// We model the ISP as Abilene, announce one external prefix at three egress
// PoPs, and splice a virtual prefix node into the connectivity graph.  PR
// tables built over that graph protect both internal links and the egress
// links themselves: when the primary exit dies, packets re-cycle to another
// announcement without any BGP involvement.
//
//   $ ./multihomed_bgp
#include <iostream>

#include "core/cycle_table.hpp"
#include "core/pr_protocol.hpp"
#include "embed/embedder.hpp"
#include "graph/graphio.hpp"
#include "net/forwarding.hpp"
#include "route/routing_db.hpp"
#include "topo/topologies.hpp"

int main() {
  using namespace pr;

  // The ISP's intra-domain topology...
  graph::Graph g = topo::abilene();
  // ...plus the BGP connectivity graph: a virtual node for prefix
  // 192.0.2.0/24, attached at every egress that received an announcement.
  const graph::NodeId prefix = g.add_node("PREFIX:192.0.2.0/24");
  const char* egress[] = {"Seattle", "NewYork", "Houston"};
  for (const char* pop : egress) {
    g.add_edge(*g.find_node(pop), prefix);
  }

  const auto emb = embed::embed(g);
  std::cout << "connectivity graph: " << g.node_count() << " nodes, "
            << g.edge_count() << " links, genus " << emb.genus << ", PR-safe "
            << std::boolalpha << emb.supports_pr() << "\n\n";

  const route::RoutingDb routes(g);
  const core::CycleFollowingTable cycles(emb.rotation);
  core::PacketRecycling pr_proto(routes, cycles);

  const auto src = *g.find_node("Denver");
  const auto show = [&](const char* label, net::Network& network) {
    const auto trace = net::route_packet(network, pr_proto, src, prefix);
    std::cout << label << ":\n  ";
    for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
      std::cout << (i ? " -> " : "") << g.display_name(trace.nodes[i]);
    }
    if (!trace.delivered()) {
      std::cout << "  [DROPPED: " << net::drop_reason_name(trace.drop_reason) << "]";
    }
    std::cout << "\n\n";
  };

  {
    net::Network network(g);
    show("healthy: Denver -> prefix (expect nearest egress)", network);
  }
  {
    net::Network network(g);
    network.fail_link(*g.find_edge(*g.find_node("Seattle"), prefix));
    show("Seattle announcement withdrawn (egress link down)", network);
  }
  {
    net::Network network(g);
    network.fail_link(*g.find_edge(*g.find_node("Seattle"), prefix));
    network.fail_link(*g.find_edge(*g.find_node("Denver"), *g.find_node("KansasCity")));
    show("egress down + internal Denver-KansasCity down", network);
  }
  {
    net::Network network(g);
    for (const char* pop : egress) {
      network.fail_link(*g.find_edge(*g.find_node(pop), prefix));
    }
    show("all three announcements withdrawn (prefix unreachable)", network);
  }

  return 0;
}
